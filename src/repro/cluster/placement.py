"""Entry-key placement across cache shards.

The cluster layer spreads ``(document, user)`` entry keys over N
:class:`~repro.cache.manager.DocumentCache` shards.  Two placement
policies are supplied behind one protocol:

* :class:`HashRingPolicy` — classic consistent hashing over a
  :class:`PlacementRing` with virtual nodes: placement is balanced to
  within a small factor of ideal, and a shard join/leave moves only the
  keys in the arcs the changed shard owned (≈ ``K / N`` of the
  keyspace), never reshuffling the survivors' keys among themselves.
* :class:`ReinforcedCounterPolicy` — the ring plus per-key *reinforced
  counters* in the spirit of Leconte's cache-network placement analysis
  (arXiv:1501.03446): each access to a key reinforces a bounded counter
  and a key whose counter reaches the pin threshold sticks to the shard
  that has been serving it, even across ring changes, until decay (the
  counter's "death") lets it drift back to the ring.  Under the
  Zipf-with-churn workload shapes of Olmos et al. (arXiv:1403.5479)
  this keeps the hottest keys' entries and memo locality stable while
  rebalances shuffle only the cold tail.

Placement keys are hashed by their stable string form
``"{document_id}|{user_id}"`` so placement is identical across runs and
across processes — a requirement for the deterministic simulator.
"""

from __future__ import annotations

import bisect
import hashlib
import typing
from typing import Protocol, runtime_checkable

from repro.errors import WorkloadError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.entry import EntryKey

__all__ = [
    "PlacementRing",
    "PlacementPolicy",
    "HashRingPolicy",
    "ReinforcedCounterPolicy",
]


def _hash_point(label: str) -> int:
    """A stable 64-bit point on the ring for *label*."""
    digest = hashlib.md5(label.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def placement_label(key: "EntryKey") -> str:
    """The stable string form an entry key is hashed under."""
    return f"{key.document_id}|{key.user_id}"


class PlacementRing:
    """Consistent-hash ring with virtual nodes.

    Each shard contributes ``replicas`` points (virtual nodes) on a
    64-bit ring; a key is owned by the first shard point at or after
    its own hash.  More replicas → tighter balance; 64 keeps the
    max/ideal load factor under ~1.35 for small clusters while staying
    cheap to rebuild.
    """

    def __init__(
        self, shards: typing.Iterable[str] = (), replicas: int = 64
    ) -> None:
        if replicas < 1:
            raise WorkloadError(f"replicas must be >= 1: {replicas}")
        self.replicas = replicas
        self._shards: list[str] = []
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard in shards:
            self.add_shard(shard)

    @property
    def shards(self) -> list[str]:
        """Registered shard names, insertion order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def add_shard(self, shard: str) -> None:
        """Add one shard's virtual nodes; rejects duplicates."""
        if shard in self._shards:
            raise WorkloadError(f"duplicate shard: {shard!r}")
        self._shards.append(shard)
        self._rebuild()

    def remove_shard(self, shard: str) -> None:
        """Remove one shard's virtual nodes."""
        try:
            self._shards.remove(shard)
        except ValueError:
            raise WorkloadError(f"unknown shard: {shard!r}") from None
        self._rebuild()

    def _rebuild(self) -> None:
        points: list[tuple[int, str]] = []
        for shard in self._shards:
            for replica in range(self.replicas):
                points.append((_hash_point(f"{shard}#{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def place(self, key: "EntryKey") -> str:
        """The shard owning *key*'s arc of the ring."""
        if not self._shards:
            raise WorkloadError("placement ring has no shards")
        point = _hash_point(placement_label(key))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def replica_for(self, key: "EntryKey", primary: str) -> str | None:
        """The first shard *after* *key*'s arc that is not *primary*.

        Classic successor-replica placement: walking the ring past the
        owner yields a deterministic, per-key-spread backup — the shard
        the cluster hedges to and fails over onto.  ``None`` when no
        distinct shard exists (a one-shard ring).
        """
        if len(self._shards) < 2:
            return None
        point = _hash_point(placement_label(key))
        index = bisect.bisect_right(self._points, point)
        count = len(self._points)
        for offset in range(count):
            owner = self._owners[(index + offset) % count]
            if owner != primary:
                return owner
        return None


@runtime_checkable
class PlacementPolicy(Protocol):
    """Pluggable ``entry key → shard name`` placement decision."""

    def shards(self) -> list[str]:
        """Currently placeable shard names."""
        ...  # pragma: no cover - protocol

    def add_shard(self, shard: str) -> None:
        """A shard joined the cluster."""
        ...  # pragma: no cover - protocol

    def remove_shard(self, shard: str) -> None:
        """A shard left the cluster (planned or lost)."""
        ...  # pragma: no cover - protocol

    def place(self, key: "EntryKey") -> str:
        """The shard that owns *key* right now."""
        ...  # pragma: no cover - protocol

    def note_access(self, key: "EntryKey") -> None:
        """One read/write of *key* landed (placement feedback signal)."""
        ...  # pragma: no cover - protocol


class HashRingPolicy:
    """The default policy: pure consistent hashing, no feedback."""

    def __init__(
        self, shards: typing.Iterable[str] = (), replicas: int = 64
    ) -> None:
        self.ring = PlacementRing(shards, replicas=replicas)

    def shards(self) -> list[str]:
        return self.ring.shards

    def add_shard(self, shard: str) -> None:
        self.ring.add_shard(shard)

    def remove_shard(self, shard: str) -> None:
        self.ring.remove_shard(shard)

    def place(self, key: "EntryKey") -> str:
        return self.ring.place(key)

    def replica_for(self, key: "EntryKey", primary: str) -> str | None:
        """*key*'s ring-successor replica (see the ring's method)."""
        return self.ring.replica_for(key, primary)

    def note_access(self, key: "EntryKey") -> None:
        """Stateless placement ignores access feedback."""


class ReinforcedCounterPolicy:
    """Ring placement with reinforced-counter stickiness.

    Per arXiv:1501.03446's insurance-against-churn intuition: every
    access to a key reinforces a counter bounded at ``counter_cap``;
    once the counter reaches ``pin_threshold`` the key is *pinned* to
    the shard currently serving it and keeps placing there across ring
    changes — a rebalance that would move a hot key is deferred until
    the key has cooled.  Every ``decay_interval`` accesses (a
    deterministic clockless schedule) all counters halve; a counter
    that decays below the threshold unpins its key and the ring takes
    over again.  Cold keys never pin, so join/leave still moves only
    ≈ ``K / N`` of the keyspace.
    """

    def __init__(
        self,
        shards: typing.Iterable[str] = (),
        replicas: int = 64,
        pin_threshold: int = 3,
        counter_cap: int = 8,
        decay_interval: int = 256,
    ) -> None:
        if pin_threshold < 1:
            raise WorkloadError(
                f"pin_threshold must be >= 1: {pin_threshold}"
            )
        if counter_cap < pin_threshold:
            raise WorkloadError(
                f"counter_cap must be >= pin_threshold: {counter_cap}"
            )
        if decay_interval < 1:
            raise WorkloadError(
                f"decay_interval must be >= 1: {decay_interval}"
            )
        self.ring = PlacementRing(shards, replicas=replicas)
        self.pin_threshold = pin_threshold
        self.counter_cap = counter_cap
        self.decay_interval = decay_interval
        self._counters: dict[str, int] = {}
        self._pins: dict[str, str] = {}
        self._accesses = 0

    def shards(self) -> list[str]:
        return self.ring.shards

    def add_shard(self, shard: str) -> None:
        self.ring.add_shard(shard)

    def remove_shard(self, shard: str) -> None:
        self.ring.remove_shard(shard)
        # Pins to a dead shard are void; their keys fall back to the ring.
        self._pins = {
            label: pinned
            for label, pinned in self._pins.items()
            if pinned != shard
        }

    def place(self, key: "EntryKey") -> str:
        label = placement_label(key)
        pinned = self._pins.get(label)
        if pinned is not None and pinned in self.ring:
            return pinned
        return self.ring.place(key)

    def replica_for(self, key: "EntryKey", primary: str) -> str | None:
        """*key*'s ring-successor replica; pins never bind a backup —
        a hedge/failover target must differ from wherever the key is
        pinned, which :meth:`PlacementRing.replica_for`'s ``primary``
        exclusion already guarantees."""
        return self.ring.replica_for(key, primary)

    def note_access(self, key: "EntryKey") -> None:
        label = placement_label(key)
        counter = min(self._counters.get(label, 0) + 1, self.counter_cap)
        self._counters[label] = counter
        if counter >= self.pin_threshold and label not in self._pins:
            self._pins[label] = self.place(key)
        self._accesses += 1
        if self._accesses % self.decay_interval == 0:
            self._decay()

    def _decay(self) -> None:
        decayed: dict[str, int] = {}
        for label, counter in self._counters.items():
            counter //= 2
            if counter > 0:
                decayed[label] = counter
            if counter < self.pin_threshold:
                self._pins.pop(label, None)
        self._counters = decayed

    @property
    def pinned(self) -> dict[str, str]:
        """Live ``placement label → shard`` pins (for inspection)."""
        return dict(self._pins)
