"""Cross-shard transform-memo sharing.

The A15 memo plane makes a second user's cold miss a signature-only
adopt — but only within one cache, because a
:class:`~repro.cache.memo.TransformMemo` record is only servable while
its output bytes are in *that* cache's content store.  In a cluster,
shard A's chain execution should save shard B's users too.

:class:`SharedTransformMemo` is the cluster's answer: one memo table
installed (via :class:`~repro.cache.manager.DocumentCache`'s ``memo``
injection seam) as every shard's ``core.memo``.  Records written by any
shard's admission path are visible to every shard's consult path — the
table is the gossip, fully propagated by construction.  The one gap is
bytes: a record recorded by shard A maps to an output signature that
lives in A's store, not B's.  The pipeline's
:meth:`~repro.cache.memo.TransformMemo.materialize` hook closes it —
when B's consult finds the signature missing locally, this class finds
a sibling store holding the bytes, charges the inter-shard link on the
virtual clock (per-pair costs from
:class:`~repro.sim.topology.ClusterTopology`), and seeds the bytes into
B's store with ``put_signed``; B's serving entry takes over that single
reference, so refcounts stay exact and eviction works unchanged.

Purges stay conservative: one shard's crash or anti-entropy resync
purges the *shared* table, because every record is under the same
suspicion no matter which shard wrote it.  Records are in any case
self-validating at consult time (source-signature probe, fingerprint
keying, verifier re-runs), so a purge costs re-execution, never
correctness.
"""

from __future__ import annotations

import typing

from repro.cache.memo import MemoRecord, TransformMemo
from repro.errors import CacheError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.core import CacheCore
    from repro.sim.topology import ClusterTopology

__all__ = ["SharedTransformMemo"]


class SharedTransformMemo(TransformMemo):
    """One memo table shared by every shard of a cluster."""

    def __init__(
        self, capacity: int, topology: "ClusterTopology | None" = None
    ) -> None:
        super().__init__(capacity)
        self._topology = topology
        self._cores: dict[str, "CacheCore"] = {}
        self._names: dict[int, str] = {}
        #: Cross-shard imports served (each is a chain execution some
        #: shard avoided that a private memo could not have).
        self.imports = 0
        #: Bytes moved over shard links by imports.
        self.import_bytes = 0
        #: Consults where no sibling store held the bytes either.
        self.import_misses = 0

    def attach(self, name: str, core: "CacheCore") -> None:
        """Register one shard's core under its shard name."""
        if name in self._cores:
            raise CacheError(f"duplicate shard attached: {name!r}")
        self._cores[name] = core
        self._names[id(core)] = name

    def detach(self, name: str) -> None:
        """Forget a shard (it left the cluster); imports skip it."""
        core = self._cores.pop(name, None)
        if core is None:
            raise CacheError(f"unknown shard: {name!r}")
        self._names.pop(id(core), None)

    def attached(self) -> list[str]:
        """Attached shard names, attach order."""
        return list(self._cores)

    def materialize(
        self, record: MemoRecord, core: "CacheCore"
    ) -> bytes | None:
        """Pull *record*'s output bytes from a sibling shard's store.

        Scans attached shards in attach order (deterministic), skipping
        the requester; the first store holding the signature donates.
        The transfer is charged over the cluster topology's link for
        the (donor, requester) pair at the record's size, then the
        bytes are seeded into the requester's store via ``put_signed``
        — exactly one new reference, which the caller's serving entry
        takes over.

        A requester with a durable L2 tier tries its own disk first
        (the base-memo materialization): a local CRC-gated read beats
        shipping the bytes over a shard link.
        """
        local = super().materialize(record, core)
        if local is not None:
            return local
        requester = self._names.get(id(core))
        for name, sibling in self._cores.items():
            if sibling is core:
                continue
            if record.output_signature not in sibling.store:
                continue
            content = sibling.store.get(record.output_signature)
            for hop in self._link_path(name, requester):
                core.ctx.charge_hop(hop, len(content))
            core.store.put_signed(content, record.output_signature)
            self.imports += 1
            self.import_bytes += len(content)
            return content
        self.import_misses += 1
        return None

    def _link_path(self, donor: str, requester: str | None) -> list[str]:
        if self._topology is None or requester is None:
            return ["shard-to-shard"]
        return self._topology.link_path(donor, requester)
