"""The fault plan: a seed-deterministic schedule of injected failures.

A :class:`FaultPlan` owns every fault-injection decision for one
simulation run.  Decisions come from two sources:

* **scheduled windows** (:class:`OutageWindow`) — absolute virtual-time
  intervals during which a repository, a topology link, or everything is
  unreachable;
* **probabilistic draws** — per-site seeded RNG streams (one for
  fetches, one for the invalidation bus, one for verifiers), so the
  decision sequence at one seam never perturbs another's.

All randomness is seeded with strings (``f"{seed}:{site}"``), which
Python hashes with SHA-512 — stable across processes, unaffected by
``PYTHONHASHSEED``.  All timing comes from the virtual clock.  Every
injected fault is appended to :attr:`FaultPlan.trace`, so two runs with
the same seed and workload produce *identical* injection traces — the
reproducibility contract the chaos tests assert.

The plan is consulted at the seams the system already has:

* :meth:`FaultPlan.check_fetch` — from :meth:`BitProvider.fetch`; raises
  :class:`~repro.errors.RepositoryOfflineError` inside an outage window
  and :class:`~repro.errors.ContentUnavailableError` on a probability
  hit.
* :meth:`FaultPlan.check_store` — from :meth:`BitProvider.store`; outage
  windows reject writes too (write-back flush retries exercise this).
* :meth:`FaultPlan.notifier_disposition` — from
  :meth:`InvalidationBus.deliver`; a delivery may be silently lost (the
  paper's lost-callback problem) or delayed.
* :meth:`FaultPlan.check_verifier` — from the cache manager's hit path;
  injects verifier exceptions and enforces a timeout budget.
* :meth:`FaultPlan.check_property` — from the stream-wrapper seam in
  :mod:`repro.streams.chain`; picks a property-misbehaviour mode
  (``raise`` / ``runaway`` / ``corrupt``) for one wrapper invocation.
* :meth:`FaultPlan.link_down` — from :meth:`SimContext.charge_hop`;
  scheduled topology-link outages.
* :meth:`FaultPlan.check_disk_write` / :meth:`FaultPlan.check_disk_sync`
  / :meth:`FaultPlan.disk_io_delay_ms` — from the durable L2 tier in
  :mod:`repro.storage`; inject write failures, corrupted records,
  lost fsyncs and slow I/O at the disk seam.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.errors import (
    ContentUnavailableError,
    RepositoryOfflineError,
    VerifierError,
    WorkloadError,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from typing import Callable, Sequence

    from repro.sim.clock import VirtualClock

__all__ = [
    "OutageWindow",
    "FaultRecord",
    "FaultStats",
    "FaultPlan",
    "set_default_fault_scenario",
    "clear_default_fault_scenario",
    "default_fault_plan",
]


@dataclass(frozen=True)
class OutageWindow:
    """One scheduled unavailability interval ``[start_ms, end_ms)``.

    ``target`` narrows the window to one repository name (for fetch/store
    outages) or one hop name (for link outages); ``None`` matches every
    target at that seam.
    """

    start_ms: float
    end_ms: float
    target: str | None = None

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise WorkloadError(
                f"outage window ends before it starts: {self}"
            )

    def covers(self, now_ms: float, target: str) -> bool:
        """True when *target* is inside this window at *now_ms*."""
        if not self.start_ms <= now_ms < self.end_ms:
            return False
        return self.target is None or self.target == target


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as recorded in the plan's trace."""

    at_ms: float
    site: str
    action: str
    target: str


@dataclass
class FaultStats:
    """Counters of injected faults, by seam."""

    fetch_unavailable: int = 0
    fetch_offline: int = 0
    store_offline: int = 0
    notifications_lost: int = 0
    notifications_delayed: int = 0
    #: Deliveries swallowed by a scheduled bus partition window (counted
    #: separately from probabilistic losses so experiments can tell a
    #: blackout apart from background lossiness).
    notifications_partition_dropped: int = 0
    verifier_failures: int = 0
    verifier_timeouts: int = 0
    link_outages: int = 0
    #: Property-misbehaviour injections at the stream-wrapper seam,
    #: by mode.
    properties_raised: int = 0
    properties_runaway: int = 0
    properties_corrupted: int = 0
    #: Disk-seam injections against the durable L2 tier.
    disk_write_failures: int = 0
    disk_fsyncs_lost: int = 0
    disk_records_corrupted: int = 0
    disk_slow_ios: int = 0
    #: Fetches slowed by a gray-failure window on their cache/shard —
    #: the shard is up and answering, just pathologically slow.
    gray_slow_fetches: int = 0

    @property
    def total(self) -> int:
        """Total faults injected across all seams."""
        return (
            self.fetch_unavailable + self.fetch_offline + self.store_offline
            + self.notifications_lost + self.notifications_delayed
            + self.notifications_partition_dropped
            + self.verifier_failures + self.verifier_timeouts
            + self.link_outages
            + self.properties_raised + self.properties_runaway
            + self.properties_corrupted
            + self.disk_write_failures + self.disk_fsyncs_lost
            + self.disk_records_corrupted + self.disk_slow_ios
            + self.gray_slow_fetches
        )


def _validate_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise WorkloadError(f"{name} must be in [0, 1]: {value}")
    return value


class FaultPlan:
    """Deterministic fault-injection schedule for one simulation run.

    Parameters
    ----------
    clock:
        The run's virtual clock; every scheduled decision and every trace
        timestamp reads it (wall time is never consulted).
    seed:
        Seeds the per-site RNG streams.  Same seed + same workload →
        byte-identical injection trace.
    fetch_failure_probability:
        Per-fetch chance that the provider raises
        :class:`~repro.errors.ContentUnavailableError`.
    outages:
        Scheduled repository outage windows; fetches and in-band stores
        inside a window raise :class:`~repro.errors.RepositoryOfflineError`.
    notifier_loss_probability:
        Per-delivery chance the invalidation bus silently drops the
        notification (the lost-callback problem).
    notifier_delay_probability, notifier_delay_ms:
        Per-delivery chance the notification is deferred by
        ``notifier_delay_ms`` virtual milliseconds instead of arriving
        inline.
    verifier_failure_probability:
        Per-execution chance a verifier raises (the manager treats this
        as a conservative invalidation, and may quarantine the verifier).
    verifier_timeout_budget_ms:
        If set, any verifier whose declared ``cost_ms`` exceeds the
        budget is failed as a timeout before it runs.
    property_failure_probability:
        Per-invocation chance that a property's stream wrapper
        misbehaves.  The mode is drawn uniformly from
        ``property_failure_modes``: ``raise`` throws from the wrapper
        as it is applied, ``runaway`` burns
        ``property_runaway_cost_ms`` extra virtual time, ``corrupt``
        garbles the stream and then fails it mid-transfer.  Uncontained,
        all three poison the access; the containment layer converts
        them into breaker trips and fallbacks.
    property_failure_modes:
        The misbehaviour modes eligible for the draw.
    property_runaway_cost_ms:
        Extra virtual time a ``runaway`` invocation burns.
    link_outages:
        Scheduled topology-link outage windows, keyed by hop name;
        crossing a downed hop raises
        :class:`~repro.errors.RepositoryOfflineError`.
    bus_outages:
        Scheduled *partition* windows on the invalidation bus: every
        delivery attempted inside a window is silently dropped (the
        blackout variant of the lost-callback problem) and lease
        renewals are blocked, so leased channels lapse.  ``target``
        narrows a window to one cache id.
    cache_crashes:
        Virtual instants at which every cache built on this plan's
        context crashes and restarts, discarding its in-memory entry
        table and dirty write-back buffer.  A cache with a write-back
        journal replays unflushed writes on restart; one without loses
        them — the contrast the A13 bench measures.
    disk_write_fail_probability:
        Per-write chance a durable-tier append fails outright; the L2
        tier counts it against the storage breaker and skips the write
        (the entry simply stays L1-only).
    disk_fsync_lost_probability:
        Per-sync chance an fsync silently *lies*: the call returns but
        the durable watermark does not advance, so a crash loses the
        supposedly synced bytes — the torn-tail/double-append hazard
        the journal replay must tolerate.
    disk_corrupt_probability:
        Per-write chance the record's payload bytes are flipped on disk
        after the CRC is computed; the corruption is detected (CRC
        mismatch) at read or recovery time and the record is dropped.
    disk_slow_io_probability, disk_slow_io_ms:
        Per-operation chance a disk I/O burns ``disk_slow_io_ms`` extra
        virtual milliseconds.
    gray_windows, gray_slow_ms:
        Scheduled *gray-failure* windows: while a window covers a cache
        (the ``target`` matches the cache/shard name), every fetch
        through that cache burns ``gray_slow_ms`` extra virtual
        milliseconds — up, correct, and pathologically slow, the
        failure mode hedged reads exist for.
    """

    def __init__(
        self,
        clock: "VirtualClock",
        seed: int = 0,
        fetch_failure_probability: float = 0.0,
        outages: "Sequence[OutageWindow]" = (),
        notifier_loss_probability: float = 0.0,
        notifier_delay_probability: float = 0.0,
        notifier_delay_ms: float = 0.0,
        verifier_failure_probability: float = 0.0,
        verifier_timeout_budget_ms: float | None = None,
        property_failure_probability: float = 0.0,
        property_failure_modes: "Sequence[str]" = (
            "raise", "runaway", "corrupt",
        ),
        property_runaway_cost_ms: float = 25.0,
        link_outages: "Sequence[OutageWindow]" = (),
        bus_outages: "Sequence[OutageWindow]" = (),
        cache_crashes: "Sequence[float]" = (),
        disk_write_fail_probability: float = 0.0,
        disk_fsync_lost_probability: float = 0.0,
        disk_corrupt_probability: float = 0.0,
        disk_slow_io_probability: float = 0.0,
        disk_slow_io_ms: float = 5.0,
        gray_windows: "Sequence[OutageWindow]" = (),
        gray_slow_ms: float = 150.0,
    ) -> None:
        self.clock = clock
        self.seed = seed
        self.fetch_failure_probability = _validate_probability(
            "fetch_failure_probability", fetch_failure_probability
        )
        self.outages = tuple(outages)
        self.notifier_loss_probability = _validate_probability(
            "notifier_loss_probability", notifier_loss_probability
        )
        self.notifier_delay_probability = _validate_probability(
            "notifier_delay_probability", notifier_delay_probability
        )
        if notifier_delay_ms < 0:
            raise WorkloadError(
                f"notifier_delay_ms must be non-negative: {notifier_delay_ms}"
            )
        self.notifier_delay_ms = notifier_delay_ms
        self.verifier_failure_probability = _validate_probability(
            "verifier_failure_probability", verifier_failure_probability
        )
        if (
            verifier_timeout_budget_ms is not None
            and verifier_timeout_budget_ms < 0
        ):
            raise WorkloadError(
                "verifier_timeout_budget_ms must be non-negative: "
                f"{verifier_timeout_budget_ms}"
            )
        self.verifier_timeout_budget_ms = verifier_timeout_budget_ms
        self.property_failure_probability = _validate_probability(
            "property_failure_probability", property_failure_probability
        )
        modes = tuple(property_failure_modes)
        if not modes or any(
            mode not in ("raise", "runaway", "corrupt") for mode in modes
        ):
            raise WorkloadError(
                "property_failure_modes must be a non-empty subset of "
                f"raise/runaway/corrupt: {modes}"
            )
        self.property_failure_modes = modes
        if property_runaway_cost_ms < 0:
            raise WorkloadError(
                "property_runaway_cost_ms must be non-negative: "
                f"{property_runaway_cost_ms}"
            )
        self.property_runaway_cost_ms = property_runaway_cost_ms
        self.link_outages = tuple(link_outages)
        self.bus_outages = tuple(bus_outages)
        for instant in cache_crashes:
            if instant < 0:
                raise WorkloadError(
                    f"cache_crashes instants must be non-negative: {instant}"
                )
        self.cache_crashes = tuple(sorted(cache_crashes))
        self.disk_write_fail_probability = _validate_probability(
            "disk_write_fail_probability", disk_write_fail_probability
        )
        self.disk_fsync_lost_probability = _validate_probability(
            "disk_fsync_lost_probability", disk_fsync_lost_probability
        )
        self.disk_corrupt_probability = _validate_probability(
            "disk_corrupt_probability", disk_corrupt_probability
        )
        self.disk_slow_io_probability = _validate_probability(
            "disk_slow_io_probability", disk_slow_io_probability
        )
        if disk_slow_io_ms < 0:
            raise WorkloadError(
                f"disk_slow_io_ms must be non-negative: {disk_slow_io_ms}"
            )
        self.disk_slow_io_ms = disk_slow_io_ms
        self.gray_windows = tuple(gray_windows)
        if gray_slow_ms < 0:
            raise WorkloadError(
                f"gray_slow_ms must be non-negative: {gray_slow_ms}"
            )
        self.gray_slow_ms = gray_slow_ms
        # One RNG stream per seam; string seeding is hash-salt-proof.
        self._rng_fetch = random.Random(f"{seed}:fetch")
        self._rng_bus = random.Random(f"{seed}:bus")
        self._rng_verifier = random.Random(f"{seed}:verifier")
        self._rng_property = random.Random(f"{seed}:property")
        self._rng_disk = random.Random(f"{seed}:disk")
        self.stats = FaultStats()
        self.trace: list[FaultRecord] = []

    # -- trace ---------------------------------------------------------------

    def _record(self, site: str, action: str, target: str) -> None:
        self.trace.append(
            FaultRecord(
                at_ms=self.clock.now_ms, site=site, action=action,
                target=target,
            )
        )

    def injection_trace(self) -> tuple[FaultRecord, ...]:
        """The injections so far, as an immutable comparable sequence."""
        return tuple(self.trace)

    # -- provider seam -------------------------------------------------------

    def check_fetch(self, repository: str) -> None:
        """Gate one provider fetch; raises to inject a failure."""
        now = self.clock.now_ms
        for window in self.outages:
            if window.covers(now, repository):
                self.stats.fetch_offline += 1
                self._record("provider", "offline-window", repository)
                raise RepositoryOfflineError(
                    f"repository {repository!r} is inside a scheduled "
                    f"outage window at t={now:.1f}ms"
                )
        if (
            self.fetch_failure_probability
            and self._rng_fetch.random() < self.fetch_failure_probability
        ):
            self.stats.fetch_unavailable += 1
            self._record("provider", "unavailable", repository)
            raise ContentUnavailableError(
                f"injected fetch failure at {repository!r} (t={now:.1f}ms)"
            )

    def check_store(self, repository: str) -> None:
        """Gate one in-band store; outage windows reject writes too."""
        now = self.clock.now_ms
        for window in self.outages:
            if window.covers(now, repository):
                self.stats.store_offline += 1
                self._record("provider", "store-offline-window", repository)
                raise RepositoryOfflineError(
                    f"repository {repository!r} rejected a store inside a "
                    f"scheduled outage window at t={now:.1f}ms"
                )

    # -- invalidation-bus seam -----------------------------------------------

    def bus_partitioned(self, target: str) -> bool:
        """True while *target*'s bus channel is inside a partition window.

        Pure window check — no RNG draw, no trace record — so lease
        renewals can poll it without perturbing the per-delivery
        disposition stream.
        """
        now = self.clock.now_ms
        return any(window.covers(now, target) for window in self.bus_outages)

    def check_bus_delivery(self, target: str) -> bool:
        """Gate one bus delivery against partition windows.

        Returns True (and records the injection) when the delivery must
        be dropped because the channel is partitioned.  Consulted before
        the probabilistic :meth:`notifier_disposition` draw, so runs
        without partition windows keep byte-identical RNG streams.
        """
        if self.bus_partitioned(target):
            self.stats.notifications_partition_dropped += 1
            self._record("bus", "partition-drop", target)
            return True
        return False

    def notifier_disposition(self, target: str) -> tuple[str, float]:
        """Decide one bus delivery: ``("deliver"|"drop"|"delay", delay_ms)``."""
        if (
            self.notifier_loss_probability
            and self._rng_bus.random() < self.notifier_loss_probability
        ):
            self.stats.notifications_lost += 1
            self._record("bus", "drop", target)
            return "drop", 0.0
        if (
            self.notifier_delay_probability
            and self._rng_bus.random() < self.notifier_delay_probability
        ):
            self.stats.notifications_delayed += 1
            self._record("bus", "delay", target)
            return "delay", self.notifier_delay_ms
        return "deliver", 0.0

    # -- verifier seam -------------------------------------------------------

    def check_verifier(self, cost_ms: float, label: str = "verifier") -> None:
        """Gate one verifier execution; raises to inject a failure."""
        if (
            self.verifier_timeout_budget_ms is not None
            and cost_ms > self.verifier_timeout_budget_ms
        ):
            self.stats.verifier_timeouts += 1
            self._record("verifier", "timeout", label)
            raise VerifierError(
                f"{label} exceeded the timeout budget: cost {cost_ms}ms > "
                f"budget {self.verifier_timeout_budget_ms}ms"
            )
        if (
            self.verifier_failure_probability
            and self._rng_verifier.random() < self.verifier_failure_probability
        ):
            self.stats.verifier_failures += 1
            self._record("verifier", "raise", label)
            raise VerifierError(
                f"injected {label} failure at t={self.clock.now_ms:.1f}ms"
            )

    # -- property (stream-wrapper) seam ---------------------------------------

    def check_property(self, label: str = "property") -> str | None:
        """Decide one property stream-wrapper invocation's misbehaviour.

        Returns ``None`` (behave) or one of the configured modes.  Zero
        probability consumes no RNG draw, so runs without property
        faults keep byte-identical injection streams.
        """
        if (
            not self.property_failure_probability
            or self._rng_property.random()
            >= self.property_failure_probability
        ):
            return None
        mode = self._rng_property.choice(list(self.property_failure_modes))
        if mode == "raise":
            self.stats.properties_raised += 1
        elif mode == "runaway":
            self.stats.properties_runaway += 1
        else:
            self.stats.properties_corrupted += 1
        self._record("property", mode, label)
        return mode

    # -- disk seam -----------------------------------------------------------

    def check_disk_write(self, target: str = "disk") -> str | None:
        """Decide one durable-tier write: ``None`` / ``"fail"`` / ``"corrupt"``.

        ``"fail"`` means the append never happens (the tier counts a
        storage-breaker failure and skips); ``"corrupt"`` means the
        bytes land on disk garbled after the CRC was computed, so the
        damage surfaces later as a checksum mismatch.  Zero-probability
        draws consume no RNG, keeping fault-free runs byte-identical.
        """
        if (
            self.disk_write_fail_probability
            and self._rng_disk.random() < self.disk_write_fail_probability
        ):
            self.stats.disk_write_failures += 1
            self._record("disk", "write-fail", target)
            return "fail"
        if (
            self.disk_corrupt_probability
            and self._rng_disk.random() < self.disk_corrupt_probability
        ):
            self.stats.disk_records_corrupted += 1
            self._record("disk", "corrupt", target)
            return "corrupt"
        return None

    def check_disk_sync(self, target: str = "disk") -> bool:
        """True when one fsync is silently lost (watermark not advanced)."""
        if (
            self.disk_fsync_lost_probability
            and self._rng_disk.random() < self.disk_fsync_lost_probability
        ):
            self.stats.disk_fsyncs_lost += 1
            self._record("disk", "fsync-lost", target)
            return True
        return False

    def disk_io_delay_ms(self, target: str = "disk") -> float:
        """Extra virtual ms one disk I/O burns (0.0 when healthy)."""
        if (
            self.disk_slow_io_probability
            and self._rng_disk.random() < self.disk_slow_io_probability
        ):
            self.stats.disk_slow_ios += 1
            self._record("disk", "slow-io", target)
            return self.disk_slow_io_ms
        return 0.0

    # -- gray-failure seam ---------------------------------------------------

    def gray_fetch_delay_ms(self, cache_name: str) -> float:
        """Extra virtual ms one fetch burns on a gray-failing cache.

        A *gray* failure is the nastiest kind for a cluster: the shard
        answers every request correctly, just pathologically slowly, so
        nothing trips an error-based breaker.  Window-based and
        RNG-free — like :meth:`bus_partitioned` — so plans without gray
        windows keep byte-identical injection streams.  The window's
        ``target`` matches the cache/shard *name* (e.g. a cluster's
        ``"cluster-shard0"``); ``None`` grays every cache.
        """
        if not self.gray_windows:
            return 0.0
        now = self.clock.now_ms
        for window in self.gray_windows:
            if window.covers(now, cache_name):
                self.stats.gray_slow_fetches += 1
                self._record("shard", "gray-slow", cache_name)
                return self.gray_slow_ms
        return 0.0

    # -- topology seam -------------------------------------------------------

    def link_down(self, hop: str) -> bool:
        """True (and recorded) when *hop* is inside a link-outage window."""
        now = self.clock.now_ms
        for window in self.link_outages:
            if window.covers(now, hop):
                self.stats.link_outages += 1
                self._record("link", "down", hop)
                return True
        return False


#: Process-wide default scenario, consulted by every freshly constructed
#: :class:`~repro.sim.context.SimContext`; lets the CLI's ``--faults``
#: flag infiltrate experiments that build their own contexts.
_default_scenario: "Callable[[VirtualClock], FaultPlan] | None" = None


def set_default_fault_scenario(
    factory: "Callable[[VirtualClock], FaultPlan]",
) -> None:
    """Install a factory applied to every new :class:`SimContext`."""
    global _default_scenario
    _default_scenario = factory


def clear_default_fault_scenario() -> None:
    """Remove the process-wide default scenario (the normal state)."""
    global _default_scenario
    _default_scenario = None


def default_fault_plan(clock: "VirtualClock") -> FaultPlan | None:
    """Build a plan from the default scenario, or ``None`` if unset."""
    if _default_scenario is None:
        return None
    return _default_scenario(clock)
