"""Retry with capped exponential backoff, charged to the virtual clock.

Production caches do not give up after one failed origin fetch; they
retry with backoff and only then degrade.  :class:`RetryPolicy` is the
reusable schedule: attempt ``n`` (1-based) failing waits
``min(max_delay_ms, base_delay_ms * multiplier**(n-1))`` virtual
milliseconds before attempt ``n+1``.  The wait goes through
:meth:`SimContext.charge`, so backoff time is visible in read latencies
and can be asserted against the virtual clock exactly.

The cache manager applies the policy to miss-path fetches and write-back
flushes; anything else that talks to a flaky seam can reuse
:meth:`RetryPolicy.call`.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import ProviderError, WorkloadError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from typing import Callable, TypeVar

    from repro.sim.context import SimContext

    T = typing.TypeVar("T")

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff over transient provider failures.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included); must be ≥ 1.
    base_delay_ms:
        Backoff before the second attempt.
    multiplier:
        Growth factor per further attempt.
    max_delay_ms:
        Cap on any single backoff wait.
    retry_on:
        Exception types considered transient; anything else propagates
        immediately.  Defaults to :class:`~repro.errors.ProviderError`
        (which covers both ``ContentUnavailableError`` and
        ``RepositoryOfflineError``).
    """

    max_attempts: int = 3
    base_delay_ms: float = 5.0
    multiplier: float = 2.0
    max_delay_ms: float = 1_000.0
    retry_on: tuple[type[BaseException], ...] = (ProviderError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise WorkloadError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise WorkloadError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise WorkloadError(
                f"multiplier must be >= 1: {self.multiplier}"
            )

    def delay_before_retry_ms(self, failed_attempt: int) -> float:
        """Backoff after the *failed_attempt*-th (1-based) failure."""
        if failed_attempt < 1:
            raise WorkloadError(
                f"failed_attempt is 1-based: {failed_attempt}"
            )
        return min(
            self.max_delay_ms,
            self.base_delay_ms * self.multiplier ** (failed_attempt - 1),
        )

    def total_backoff_ms(self, failures: int) -> float:
        """Virtual time spent backing off across *failures* failures."""
        return sum(
            self.delay_before_retry_ms(n) for n in range(1, failures + 1)
        )

    def call(
        self,
        ctx: "SimContext",
        fn: "Callable[[], T]",
        on_retry: "Callable[[int, float, BaseException], None] | None" = None,
        budget_ms: "float | Callable[[], float] | None" = None,
    ) -> "T":
        """Run *fn* under this policy, charging backoff to *ctx*'s clock.

        ``on_retry(attempt, delay_ms, error)`` fires once per retry
        (after the backoff has been charged), letting callers count
        retries and attribute the delay.  The final failure propagates
        unchanged.

        ``budget_ms`` caps the time retries may burn: when the next
        backoff would sleep longer than the remaining budget, the
        policy gives up immediately — re-raising the last failure
        *without* charging the sleep — instead of burning virtual time
        the caller no longer has.  Pass a float for a fixed allowance
        or a zero-argument callable re-evaluated before each backoff
        (e.g. a deadline budget's ``remaining_ms``); ``None`` (the
        default) keeps the uncapped behaviour.
        """
        attempt = 1
        while True:
            try:
                return fn()
            except self.retry_on as error:
                if attempt >= self.max_attempts:
                    raise
                delay_ms = self.delay_before_retry_ms(attempt)
                if budget_ms is not None:
                    remaining = budget_ms() if callable(budget_ms) else budget_ms
                    if delay_ms >= remaining:
                        raise
                    if not callable(budget_ms):
                        # A fixed allowance is drawn down as it is spent.
                        budget_ms = remaining - delay_ms
                ctx.charge(delay_ms)
                if on_retry is not None:
                    on_retry(attempt, delay_ms, error)
                attempt += 1
