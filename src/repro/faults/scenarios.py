"""Canned fault scenarios for benchmarks, tests and the CLI.

Each factory takes the run's virtual clock (plus scenario knobs) and
returns a ready :class:`~repro.faults.plan.FaultPlan`.  The CLI's
``--faults`` flag installs :func:`standard_chaos_scenario` as the
process-wide default, so every experiment context picks it up; that
scenario injects only *absorbable* faults (notifier loss/delay and
verifier flakiness — failures the cache machinery converts into
conservative invalidations) so experiments not written for fault
tolerance still complete.  The raising fault classes (outage windows,
fetch failures) are exercised by the dedicated A12 bench, whose cache is
configured with retries and degradation modes.
"""

from __future__ import annotations

import typing

from repro.faults.plan import FaultPlan, OutageWindow

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.clock import VirtualClock

__all__ = [
    "outage_scenario",
    "lossy_bus_scenario",
    "flaky_fetch_scenario",
    "partition_scenario",
    "cache_crash_scenario",
    "standard_chaos_scenario",
    "partition_chaos_scenario",
    "crash_chaos_scenario",
    "misbehave_chaos_scenario",
    "diskchaos_chaos_scenario",
    "grayshard_chaos_scenario",
    "NAMED_CHAOS_SCENARIOS",
]


def outage_scenario(
    clock: "VirtualClock",
    start_ms: float,
    duration_ms: float,
    repository: str | None = None,
    seed: int = 0,
) -> FaultPlan:
    """One repository outage window; everything else healthy."""
    return FaultPlan(
        clock,
        seed=seed,
        outages=(
            OutageWindow(start_ms, start_ms + duration_ms, repository),
        ),
    )


def lossy_bus_scenario(
    clock: "VirtualClock",
    loss_probability: float = 0.1,
    delay_probability: float = 0.1,
    delay_ms: float = 250.0,
    seed: int = 0,
) -> FaultPlan:
    """The lost-callback problem: notifications dropped or delayed."""
    return FaultPlan(
        clock,
        seed=seed,
        notifier_loss_probability=loss_probability,
        notifier_delay_probability=delay_probability,
        notifier_delay_ms=delay_ms,
    )


def flaky_fetch_scenario(
    clock: "VirtualClock",
    failure_probability: float = 0.2,
    seed: int = 0,
) -> FaultPlan:
    """Intermittent ContentUnavailableError on provider fetches."""
    return FaultPlan(
        clock,
        seed=seed,
        fetch_failure_probability=failure_probability,
    )


def partition_scenario(
    clock: "VirtualClock",
    start_ms: float = 5_000.0,
    duration_ms: float = 3_000.0,
    target: str | None = None,
    seed: int = 0,
) -> FaultPlan:
    """One invalidation-bus partition window; everything else healthy.

    Every notification attempted inside the window is silently dropped
    and lease renewals are blocked — the channel blackout that the
    consistency-recovery layer (gap detection + leases + anti-entropy
    resync) exists to survive.
    """
    return FaultPlan(
        clock,
        seed=seed,
        bus_outages=(
            OutageWindow(start_ms, start_ms + duration_ms, target),
        ),
    )


def cache_crash_scenario(
    clock: "VirtualClock",
    at_ms: float = 6_000.0,
    seed: int = 0,
) -> FaultPlan:
    """One scheduled cache crash/restart; everything else healthy.

    Caches lose their entry tables and dirty write-back buffers at the
    instant; a cache with a write-back journal replays unflushed writes
    on restart, one without loses them.
    """
    return FaultPlan(clock, seed=seed, cache_crashes=(at_ms,))


def standard_chaos_scenario(
    clock: "VirtualClock",
    seed: int = 0,
) -> FaultPlan:
    """The ``--faults`` default: mild, absorbable background chaos.

    Notifier loss + delay plus occasional verifier failures.  No raising
    faults, so any experiment — fault-aware or not — runs to completion,
    just with consistency machinery under stress.
    """
    return FaultPlan(
        clock,
        seed=seed,
        notifier_loss_probability=0.05,
        notifier_delay_probability=0.10,
        notifier_delay_ms=100.0,
        verifier_failure_probability=0.02,
    )


def partition_chaos_scenario(
    clock: "VirtualClock",
    seed: int = 0,
) -> FaultPlan:
    """``--faults partition``: standard chaos plus a bus blackout.

    The partition window sits where mid-trace notifications land for the
    default experiment shapes, so lost invalidations (and lapsed leases,
    for recovery-enabled caches) are actually exercised.
    """
    return FaultPlan(
        clock,
        seed=seed,
        notifier_loss_probability=0.05,
        notifier_delay_probability=0.10,
        notifier_delay_ms=100.0,
        verifier_failure_probability=0.02,
        bus_outages=(OutageWindow(5_000.0, 9_000.0),),
    )


def crash_chaos_scenario(
    clock: "VirtualClock",
    seed: int = 0,
) -> FaultPlan:
    """``--faults crash``: standard chaos plus a mid-run cache crash."""
    return FaultPlan(
        clock,
        seed=seed,
        notifier_loss_probability=0.05,
        notifier_delay_probability=0.10,
        notifier_delay_ms=100.0,
        verifier_failure_probability=0.02,
        cache_crashes=(6_000.0,),
    )


def misbehave_chaos_scenario(
    clock: "VirtualClock",
    seed: int = 0,
    property_failure_probability: float = 0.10,
) -> FaultPlan:
    """``--faults misbehave``: standard chaos plus misbehaving properties.

    10 % of property stream-wrapper invocations misbehave (raise /
    runaway / corrupt, drawn uniformly) — the hazard the containment
    layer's breakers, budgets and firewalls exist to absorb.  Unlike the
    other named scenarios this one *does* raise out of unprepared
    deployments: run it against a cache with a containment policy (or a
    runner that counts property failures against availability).
    """
    return FaultPlan(
        clock,
        seed=seed,
        notifier_loss_probability=0.05,
        notifier_delay_probability=0.10,
        notifier_delay_ms=100.0,
        verifier_failure_probability=0.02,
        property_failure_probability=property_failure_probability,
    )


def diskchaos_chaos_scenario(
    clock: "VirtualClock",
    seed: int = 0,
) -> FaultPlan:
    """``--faults diskchaos``: standard chaos plus a hostile disk.

    Durable-tier writes fail, fsyncs lie, records corrupt on disk and
    I/O stalls — on top of a mid-run crash/restart, so recovery replays
    a journal that actually took the damage.  A cache without a
    ``storage_policy`` never touches the disk seams (zero-probability
    draws consume no RNG at the other seams, and the disk stream is
    separate), so this scenario is safe to point at any experiment;
    storage-enabled caches must absorb it via CRC drops, the storage
    breaker and L1-only fallback rather than erroring reads.
    """
    return FaultPlan(
        clock,
        seed=seed,
        notifier_loss_probability=0.05,
        notifier_delay_probability=0.10,
        notifier_delay_ms=100.0,
        verifier_failure_probability=0.02,
        cache_crashes=(6_000.0,),
        disk_write_fail_probability=0.05,
        disk_fsync_lost_probability=0.10,
        disk_corrupt_probability=0.06,
        disk_slow_io_probability=0.10,
        disk_slow_io_ms=5.0,
    )


def grayshard_chaos_scenario(
    clock: "VirtualClock",
    seed: int = 0,
    target: str | None = "cluster-0",
    start_ms: float = 2_000.0,
    duration_ms: float = 20_000.0,
    slow_ms: float = 150.0,
) -> FaultPlan:
    """``--faults grayshard``: standard chaos plus one gray-failing shard.

    During the window, every fetch through the targeted shard (by
    default ``cluster-0``, the first shard of a default-named
    ``CacheCluster``) burns ``slow_ms`` extra virtual milliseconds.
    The shard stays up and correct — no error-based breaker ever
    trips — which is exactly the failure mode the cluster's hedged
    reads and EWMA health tracking exist to absorb.  Non-cluster
    experiments name their cache ``"cache"``, which never matches the
    target, so this scenario is safe to point anywhere.
    """
    return FaultPlan(
        clock,
        seed=seed,
        notifier_loss_probability=0.05,
        notifier_delay_probability=0.10,
        notifier_delay_ms=100.0,
        verifier_failure_probability=0.02,
        gray_windows=(
            OutageWindow(start_ms, start_ms + duration_ms, target),
        ),
        gray_slow_ms=slow_ms,
    )


#: Scenario names accepted by the CLI's ``--faults [NAME]`` flag.
NAMED_CHAOS_SCENARIOS = {
    "standard": standard_chaos_scenario,
    "partition": partition_chaos_scenario,
    "crash": crash_chaos_scenario,
    "misbehave": misbehave_chaos_scenario,
    "diskchaos": diskchaos_chaos_scenario,
    "grayshard": grayshard_chaos_scenario,
}
