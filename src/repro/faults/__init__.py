"""Fault injection: deterministic failure schedules for the simulated world.

The paper's consistency machinery exists because parts of the world
misbehave: sources change "outside of the control of the document
management system", repositories go offline, callbacks get lost.  This
package makes those failures first-class and *reproducible*:

* :class:`~repro.faults.plan.FaultPlan` — a seed-deterministic schedule
  of injected failures, driven entirely by the virtual clock (never wall
  time).  It hooks the seams the system already has: bit-provider
  fetches/stores, invalidation-bus deliveries, verifier executions and
  topology links.  Every injection is appended to an inspectable trace,
  so the same seed reproduces byte-identical failure schedules.
* :class:`~repro.faults.retry.RetryPolicy` — capped exponential backoff
  charged to the virtual clock, used by the cache manager's fetch and
  write-back flush paths.
* :mod:`~repro.faults.scenarios` — canned fault scenarios for benchmarks
  and the ``--faults`` CLI flag.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultRecord,
    FaultStats,
    OutageWindow,
    clear_default_fault_scenario,
    default_fault_plan,
    set_default_fault_scenario,
)
from repro.faults.retry import RetryPolicy
from repro.faults.scenarios import (
    NAMED_CHAOS_SCENARIOS,
    cache_crash_scenario,
    crash_chaos_scenario,
    diskchaos_chaos_scenario,
    flaky_fetch_scenario,
    lossy_bus_scenario,
    misbehave_chaos_scenario,
    outage_scenario,
    partition_chaos_scenario,
    partition_scenario,
    standard_chaos_scenario,
)

__all__ = [
    "FaultPlan",
    "FaultRecord",
    "FaultStats",
    "OutageWindow",
    "RetryPolicy",
    "set_default_fault_scenario",
    "clear_default_fault_scenario",
    "default_fault_plan",
    "outage_scenario",
    "lossy_bus_scenario",
    "flaky_fetch_scenario",
    "partition_scenario",
    "cache_crash_scenario",
    "standard_chaos_scenario",
    "partition_chaos_scenario",
    "crash_chaos_scenario",
    "misbehave_chaos_scenario",
    "diskchaos_chaos_scenario",
    "NAMED_CHAOS_SCENARIOS",
]
