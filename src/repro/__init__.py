"""repro — a reproduction of *Caching Documents with Active Properties*.

De Lara, Petersen, Terry, LaMarca, Thornton, Salisbury, Dourish, Edwards
and Lamping (Xerox PARC), HotOS-VII, 1999.

The package implements the Placeless Documents middleware (base
documents, per-user references, static and active properties, event
dispatch, custom-stream chaining, bit-providers over simulated
repositories) and — the paper's contribution — an active-property-aware
content cache: per-user entries sharing identical content through MD5
signatures, notifier- and verifier-based consistency across the paper's
four invalidation classes, three-level cacheability votes with
event forwarding, and cost-aware Greedy-Dual-Size replacement.

Quickstart::

    from repro import PlacelessKernel, DocumentCache, MemoryProvider
    from repro.properties import TranslationProperty

    kernel = PlacelessKernel()
    user = kernel.create_user("eyal")
    ref = kernel.import_document(
        user, MemoryProvider(kernel.ctx, b"hello world"), "greeting")
    ref.attach(TranslationProperty())

    cache = DocumentCache(kernel, capacity_bytes=1 << 20)
    print(cache.read(ref).content)   # b"bonjour monde" — a miss
    print(cache.read(ref).hit)       # True — served from cache

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record; ``python -m repro.bench`` regenerates every
table.
"""

from repro.cache import (
    Cacheability,
    CacheEntry,
    CacheReadOutcome,
    CacheStats,
    DocumentCache,
    EntryKey,
    GreedyDualSizePolicy,
    Invalidation,
    InvalidationBus,
    InvalidationClass,
    InvalidationReason,
    LRUPolicy,
    NotifierProperty,
    ReplacementPolicy,
    TTLVerifier,
    Verdict,
    Verifier,
    WriteMode,
    install_minimum_notifiers,
    make_policy,
)
from repro.errors import PlacelessError
from repro.events import Event, EventType
from repro.faults import (
    FaultPlan,
    FaultStats,
    OutageWindow,
    RetryPolicy,
    standard_chaos_scenario,
)
from repro.ids import (
    CacheId,
    DocumentId,
    PropertyId,
    ReferenceId,
    UserId,
    VersionId,
)
from repro.events import EventRecorder
from repro.nfs import NFSMount, NFSServer
from repro.placeless import (
    ActiveProperty,
    AttachmentSite,
    BaseDocument,
    DocumentCollection,
    DocumentReference,
    DocumentSpace,
    PlacelessKernel,
    Property,
    ReadResult,
    StaticProperty,
    WriteResult,
)
from repro.providers import (
    BitProvider,
    CompositeProvider,
    DMSProvider,
    DocumentManagementSystem,
    FileSystemProvider,
    LiveFeedProvider,
    MailboxDigestProvider,
    MailServer,
    MemoryProvider,
    MessageProvider,
    SimulatedFileSystem,
    WebOrigin,
    WebProvider,
)
from repro.cluster import (
    CacheCluster,
    ClusterPolicy,
    DefaultClusterPolicy,
    PlacementRing,
)
from repro.workload import TraceRunner
from repro.sim import (
    CachePlacement,
    LatencyModel,
    SimContext,
    Topology,
    VirtualClock,
)

__version__ = "1.0.0"

__all__ = [
    # middleware
    "PlacelessKernel",
    "BaseDocument",
    "DocumentReference",
    "DocumentSpace",
    "DocumentCollection",
    "Property",
    "StaticProperty",
    "ActiveProperty",
    "AttachmentSite",
    "ReadResult",
    "WriteResult",
    "Event",
    "EventType",
    # providers
    "BitProvider",
    "MemoryProvider",
    "FileSystemProvider",
    "SimulatedFileSystem",
    "WebOrigin",
    "WebProvider",
    "LiveFeedProvider",
    "CompositeProvider",
    "DocumentManagementSystem",
    "DMSProvider",
    "MailServer",
    "MessageProvider",
    "MailboxDigestProvider",
    # cache
    "DocumentCache",
    "CacheReadOutcome",
    "WriteMode",
    "CacheEntry",
    "EntryKey",
    "Cacheability",
    "CacheStats",
    "Invalidation",
    "InvalidationClass",
    "InvalidationReason",
    "InvalidationBus",
    "NotifierProperty",
    "install_minimum_notifiers",
    "Verifier",
    "Verdict",
    "TTLVerifier",
    "ReplacementPolicy",
    "GreedyDualSizePolicy",
    "LRUPolicy",
    "make_policy",
    # cluster
    "CacheCluster",
    "ClusterPolicy",
    "DefaultClusterPolicy",
    "PlacementRing",
    # NFS façade
    "NFSServer",
    "NFSMount",
    # fault injection
    "FaultPlan",
    "FaultStats",
    "OutageWindow",
    "RetryPolicy",
    "standard_chaos_scenario",
    # tooling
    "EventRecorder",
    "TraceRunner",
    # simulation
    "SimContext",
    "VirtualClock",
    "LatencyModel",
    "Topology",
    "CachePlacement",
    # ids / errors
    "DocumentId",
    "ReferenceId",
    "UserId",
    "PropertyId",
    "CacheId",
    "VersionId",
    "PlacelessError",
    "__version__",
]
