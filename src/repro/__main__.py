"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``bench [EXPERIMENT] [--faults [SCENARIO]]``
    Run one experiment (``table1``, ``a1`` … ``a20``) or all of them;
    ``--faults`` runs it under a named chaos fault scenario
    (``standard`` when the name is omitted, ``partition`` / ``crash``
    to add a bus blackout or a mid-run cache crash, ``misbehave``
    to add raising/runaway/corrupting active-property code,
    ``diskchaos`` to add a hostile disk under the durable L2 tier, or
    ``grayshard`` to slow one cluster shard's fetches without erroring).
``doctor``
    Run a seeded smoke workload through a fully-wired two-shard
    cluster and print a health report: smoke-read outcomes, the
    per-shard health table, overload counters, circuit-breaker states,
    memo occupancy and durable-tier stats.  Exit code 0 when healthy.
``demo``
    Run the quickstart scenario inline (no file needed).
``info``
    Print the library version, module inventory and experiment index.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]

_EXPERIMENT_MODULES = {
    "table1": "repro.bench.table1",
    "a1": "repro.bench.notifier_verifier",
    "a2": "repro.bench.replacement",
    "a3": "repro.bench.sharing",
    "a4": "repro.bench.cacheability",
    "a5": "repro.bench.invalidation",
    "a6": "repro.bench.qos",
    "a7": "repro.bench.chains",
    "a8": "repro.bench.placement",
    "a9": "repro.bench.collections",
    "a10": "repro.bench.external",
    "a11": "repro.bench.writes",
    "a12": "repro.bench.faults",
    "faults": "repro.bench.faults",
    "a13": "repro.bench.recovery",
    "recovery": "repro.bench.recovery",
    "a14": "repro.bench.containment",
    "containment": "repro.bench.containment",
    "a15": "repro.bench.memo",
    "memo": "repro.bench.memo",
    "a16": "repro.bench.stampede",
    "stampede": "repro.bench.stampede",
    "a17": "repro.bench.cluster",
    "cluster": "repro.bench.cluster",
    "a18": "repro.bench.persistence",
    "persistence": "repro.bench.persistence",
    "a19": "repro.bench.overload",
    "overload": "repro.bench.overload",
    "a20": "repro.bench.scale",
    "scale": "repro.bench.scale",
}


def _cmd_bench(args: argparse.Namespace) -> int:
    import importlib

    scenario_name = getattr(args, "faults", None)
    if scenario_name is not None:
        # Every SimContext built from here on carries the named chaos
        # scenario: "standard" injects only absorbable faults
        # (lossy/delayed notifiers, flaky verifiers) so fault-unaware
        # experiments still complete; "partition" adds an invalidation-
        # bus blackout window and "crash" a mid-run cache crash/restart,
        # the two failure modes the consistency-recovery layer repairs.
        from repro.faults import (
            NAMED_CHAOS_SCENARIOS,
            set_default_fault_scenario,
        )

        set_default_fault_scenario(NAMED_CHAOS_SCENARIOS[scenario_name])
    try:
        if args.experiment == "all":
            from repro.bench.__main__ import main as run_all

            run_all()
            return 0
        module_name = _EXPERIMENT_MODULES.get(args.experiment)
        if module_name is None:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"choose from: all, {', '.join(_EXPERIMENT_MODULES)}",
                file=sys.stderr,
            )
            return 2
        bench_main = importlib.import_module(module_name).main
        if getattr(args, "smoke", False):
            import inspect

            if "smoke" not in inspect.signature(bench_main).parameters:
                print(
                    f"experiment {args.experiment!r} has no smoke mode",
                    file=sys.stderr,
                )
                return 2
            bench_main(smoke=True)
        else:
            bench_main()
        return 0
    finally:
        if scenario_name is not None:
            from repro.faults import clear_default_fault_scenario

            clear_default_fault_scenario()


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Seeded smoke workload + health report over a wired cluster.

    Builds a two-shard cluster with every opt-in plane enabled
    (containment, memo, durable L2, overload), lands a small paced
    read workload, then prints the introspection surfaces an operator
    would reach for first: the shard health table, overload counters,
    open breakers, memo occupancy and L2 stats.  Exits non-zero when
    the smoke reads misbehave or a shard is left unhealthy.
    """
    import random

    import repro
    from repro import MemoryProvider, PlacelessKernel
    from repro.cache.policies import (
        DefaultContainmentPolicy,
        DefaultMemoPolicy,
        DefaultOverloadPolicy,
        DefaultStoragePolicy,
    )
    from repro.cluster import CacheCluster
    from repro.properties import SpellingCorrectorProperty

    seed = getattr(args, "seed", 7)
    rng = random.Random(seed)
    kernel = PlacelessKernel()
    cluster = CacheCluster(
        kernel,
        2,
        capacity_bytes=1 << 20,
        memo_policy=DefaultMemoPolicy(),
        overload_policy=DefaultOverloadPolicy(),
        shard_kwargs={
            "containment_policy": DefaultContainmentPolicy(),
            "storage_policy": DefaultStoragePolicy(),
        },
    )

    users = [kernel.create_user(f"user-{i}") for i in range(3)]
    references = []
    for n in range(4):
        body = bytes(rng.randrange(32, 127) for _ in range(96))
        document = kernel.create_document(
            users[n % len(users)],
            MemoryProvider(kernel.ctx, body),
            f"doc-{n}",
        )
        for user in users:
            reference = kernel.space(user).add_reference(document)
            if n % 2 == 0:
                reference.attach(SpellingCorrectorProperty())
            references.append(reference)

    # Two paced passes: the first fills, the second must hit.  Pacing
    # (8 virtual ms per read ≈ 125 req/s) keeps the smoke loop under
    # the default admission rate so nothing sheds on a healthy run.
    problems: list[str] = []
    first_pass: dict[int, bytes] = {}
    for sweep in range(2):
        for index, reference in enumerate(references):
            kernel.ctx.clock.charge(8.0)
            outcome = cluster.read(reference)
            if sweep == 0:
                first_pass[index] = outcome.content
            else:
                if outcome.disposition not in ("hit", "revalidated"):
                    problems.append(
                        f"re-read of {reference.document_id} was "
                        f"{outcome.disposition!r}, expected a hit"
                    )
                if outcome.content != first_pass[index]:
                    problems.append(
                        f"re-read of {reference.document_id} returned "
                        "different bytes"
                    )

    print(f"repro {repro.__version__} doctor — seed {seed}")
    print(f"smoke reads: {2 * len(references)} paced reads, "
          f"{len(problems)} problem(s)")
    for problem in problems:
        print(f"  !! {problem}")

    print("\nshard health:")
    unhealthy = 0
    for name, row in cluster.health_snapshot().items():
        if row["state"] != "healthy":
            unhealthy += 1
        ewma = row["ewma_ms"]
        print(f"  {name:<12} {row['state']:<10} "
              f"reads={row['reads']:<5} fetches={row['fetches']:<4} "
              f"errors={row['errors']:<3} "
              f"ewma_ms={'-' if ewma is None else format(ewma, '.3f')}")

    stats = cluster.overload_stats
    print("\noverload:")
    print(f"  admitted={stats.admitted} shed={stats.shed} "
          f"deadline_exceeded={stats.deadline_exceeded} "
          f"deadline_violations={stats.deadline_violations}")
    print(f"  hedges launched={stats.hedges_launched} "
          f"won={stats.hedges_won} lost={stats.hedges_lost} "
          f"failovers={stats.failovers}")

    print("\nbreakers (open):")
    for name, shard in cluster.shards.items():
        guard = shard.containment
        open_counts = {
            site: len(registry.open_keys())
            for site, registry in (
                ("wrappers", guard.wrappers),
                ("verifiers", guard.verifiers),
                ("notifiers", guard.notifiers),
            )
        }
        print(f"  {name:<12} " + " ".join(
            f"{site}={count}" for site, count in open_counts.items()
        ))

    print("\nmemo:")
    for name, shard in cluster.shards.items():
        memo_stats = shard.memo_stats
        print(f"  {name:<12} records={len(shard.memo)} "
              f"adoptions={memo_stats.adoptions} "
              f"misses={memo_stats.misses}")

    print("\ndurable L2:")
    for name, shard in cluster.shards.items():
        storage = shard.storage_stats
        print(f"  {name:<12} demotions={storage.demotions} "
              f"promotions={storage.promotions} "
              f"write_failures={storage.write_failures}")

    healthy = not problems and unhealthy == 0
    print(f"\nverdict: {'healthy' if healthy else 'UNHEALTHY'}")
    return 0 if healthy else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import DocumentCache, MemoryProvider, PlacelessKernel
    from repro.properties import SpellingCorrectorProperty, TranslationProperty

    kernel = PlacelessKernel()
    eyal = kernel.create_user("eyal")
    doug = kernel.create_user("doug")
    base = kernel.create_document(
        eyal, MemoryProvider(kernel.ctx, b"Teh world of documents"), "demo"
    )
    eyal_ref = kernel.space(eyal).add_reference(base)
    doug_ref = kernel.space(doug).add_reference(base)
    eyal_ref.attach(SpellingCorrectorProperty())
    doug_ref.attach(TranslationProperty())
    cache = DocumentCache(kernel, capacity_bytes=1 << 20)
    print("eyal reads:", cache.read(eyal_ref).content.decode())
    print("doug reads:", cache.read(doug_ref).content.decode())
    hit = cache.read(eyal_ref)
    print(f"eyal again: {hit.disposition} in {hit.elapsed_ms:.3f} virtual ms")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — reproduction of "
          "'Caching Documents with Active Properties' (HotOS 1999)")
    print(f"public API symbols: {len(repro.__all__)}")
    print("experiments:", ", ".join(["all"] + list(_EXPERIMENT_MODULES)))
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Placeless Documents active-property caching — "
        "paper reproduction toolkit",
        epilog=(
            "experiments: table1 (paper Table 1 access times), "
            "a1 notifier-vs-verifier, a2 replacement policies, "
            "a3 cross-user sharing, a4 cacheability votes, "
            "a5 invalidation classes, a6 QoS pinning, a7 property "
            "chains, a8 cache placement, a9 collection prefetch, "
            "a10 external dependencies, a11 write modes, "
            "a12 availability under injected faults (alias: faults; "
            "includes the per-stage pipeline breakdown and a "
            "reproducibility check), a13 consistency recovery — "
            "staleness and recovery latency under notification loss, "
            "partitions and crashes (alias: recovery), a14 containment "
            "of misbehaving active-property code — availability and "
            "latency with circuit breakers, budgets and firewalls "
            "(alias: containment), a15 transform memoization — chain "
            "executions avoided and cold-miss latency with the memo on "
            "vs off (alias: memo; supports --smoke), a16 single-flight "
            "stampedes — chain executions per distinct key and follower "
            "latency with coalescing on vs off under the asyncio "
            "scheduler (alias: stampede; supports --smoke), a17 cluster "
            "topology — shard-count sweep with cross-shard memo sharing "
            "on vs off, topology churn repaired via resync, and a "
            "single-cache parity probe (alias: cluster; supports "
            "--smoke), a18 persistent L2 tier — warm-vs-cold restart "
            "hit ratios, restart-to-recovery latency and disk-fault "
            "degradation with crash instants mid-run (alias: "
            "persistence; supports --smoke), a19 overload robustness — "
            "offered-load sweep with deadlines, load shedding and "
            "hedged reads toggled, plus a gray-shard arm (alias: "
            "overload; supports --smoke), a20 wall-clock scale — "
            "million-entry churn shootout (gds/gdsf/lru/rc), fast-lane "
            "vs pipeline reads/sec, allocation probe and peak-RSS "
            "report (alias: scale; supports --smoke).  Examples: "
            "'repro bench a12', 'repro bench a1 --faults', "
            "'repro bench a14', 'repro bench table1 --faults partition', "
            "'repro bench --faults' (all experiments under chaos)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    bench = commands.add_parser(
        "bench",
        help="run experiments",
        description="Run one experiment or the whole suite.",
        epilog=(
            "The a12/faults experiment always injects its own fault "
            "scenarios; --faults additionally wraps ANY experiment in "
            "the standard chaos scenario to check it degrades "
            "gracefully rather than crashing."
        ),
    )
    bench.add_argument(
        "experiment", nargs="?", default="all",
        help="table1, a1..a20, faults (alias for a12), recovery (alias "
        "for a13), containment (alias for a14), memo (alias for a15), "
        "stampede (alias for a16), cluster (alias for a17), "
        "persistence (alias for a18), overload (alias for a19), "
        "scale (alias for a20), or all (default)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="reduced-size run for CI perf-smoke jobs (supported by "
        "a15 through a20; still writes the BENCH_<ID>.json artifact)",
    )
    bench.add_argument(
        "--faults", nargs="?", const="standard", default=None,
        choices=(
            "standard", "partition", "crash", "misbehave", "diskchaos",
            "grayshard",
        ),
        metavar="SCENARIO",
        help="inject a named chaos fault scenario into every simulation "
        "context built while the experiment runs.  'standard' (the "
        "default when the name is omitted): lossy/delayed notifier bus "
        "and flaky verifiers, absorbed via retries, bounded stale "
        "serves and verifier quarantine.  'partition': standard plus an "
        "invalidation-bus blackout window (drops notifications, blocks "
        "lease renewals).  'crash': standard plus a mid-run cache "
        "crash/restart (write-back journals replay unflushed writes; "
        "caches without one lose them).  'misbehave': standard plus "
        "seed-deterministic property misbehaviour (raise / runaway "
        "cost / corrupt output) at the stream-wrapper seam, the "
        "faults the containment layer (circuit breakers, budgets, "
        "firewalls) absorbs.  'diskchaos': crash-scenario chaos plus a "
        "hostile disk (failed writes, lying fsyncs, corrupted records, "
        "slow I/O) under any cache with a storage_policy, absorbed via "
        "CRC drops, the storage breaker and L1-only fallback.  "
        "'grayshard': standard plus one cluster shard (cluster-0) "
        "whose fetches burn 150 extra virtual ms without erroring — "
        "the gray failure the overload layer's EWMA health tracking "
        "and hedged reads absorb",
    )
    bench.set_defaults(func=_cmd_bench)

    doctor = commands.add_parser(
        "doctor",
        help="seeded smoke workload + health report",
        description=(
            "Run a seeded paced workload through a fully-wired "
            "two-shard cluster (containment + memo + durable L2 + "
            "overload) and print the operator introspection surfaces: "
            "shard health, overload counters, open breakers, memo "
            "occupancy and L2 stats.  Exit code 0 when healthy."
        ),
    )
    doctor.add_argument(
        "--seed", type=int, default=7,
        help="workload seed for the smoke documents (default 7)",
    )
    doctor.set_defaults(func=_cmd_doctor)

    demo = commands.add_parser("demo", help="run a tiny inline demo")
    demo.set_defaults(func=_cmd_demo)

    info = commands.add_parser("info", help="print library info")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
