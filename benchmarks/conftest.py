"""Shared helpers for the benchmark suite.

Every benchmark both (a) measures real wall-clock time of the operation
via pytest-benchmark and (b) prints the paper-style virtual-time table
once per module, so ``pytest benchmarks/ --benchmark-only -s`` regenerates
the full evaluation.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def show():
    """Print a report block, visibly separated, once."""
    printed = set()

    def _show(key: str, text: str) -> None:
        if key in printed:
            return
        printed.add(key)
        print(f"\n{text}\n")

    return _show
