"""A4: cacheability indicators / event forwarding bench."""

from __future__ import annotations

import pytest

from repro.bench.cacheability import run_cacheability
from repro.bench.harness import format_table


@pytest.fixture(scope="module")
def results():
    rows = run_cacheability(n_documents=20, n_reads=800)
    return {r.config: r for r in rows}


def test_report_and_shape(results, show, benchmark):
    show(
        "a4",
        format_table(
            ["config", "hit ratio", "mean latency (ms)", "forwarded",
             "audit complete"],
            [
                (r.config, r.hit_ratio, r.mean_latency_ms,
                 r.forwarded_reads, r.audit_complete)
                for r in results.values()
            ],
            title="A4. CACHEABLE_WITH_EVENTS vs. the WWW 'uncacheable' "
            "alternative.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert results["with-events"].audit_complete
    assert results["uncacheable"].hit_ratio == 0.0
    assert (
        results["with-events"].mean_latency_ms
        < results["uncacheable"].mean_latency_ms
    )


@pytest.mark.parametrize("config", ["unrestricted", "with-events", "uncacheable"])
def test_config_runtime(config, benchmark):
    from repro.bench.cacheability import _run_config

    benchmark.pedantic(
        lambda: _run_config(config, n_documents=10, n_reads=200, seed=31),
        rounds=3,
        iterations=1,
    )
