"""A7: latency vs. property-chain length bench."""

from __future__ import annotations

import pytest

from repro.bench.chains import run_chain_latency
from repro.bench.harness import format_table
from repro.placeless.kernel import PlacelessKernel
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.providers.memory import MemoryProvider
from repro.workload.documents import generate_text


@pytest.fixture(scope="module")
def results():
    return run_chain_latency(lengths=(0, 1, 2, 4, 6, 8))


def test_report_and_shape(results, show, benchmark):
    show(
        "a7",
        format_table(
            ["chain length", "uncached (ms)", "cache hit (ms)", "speedup",
             "replacement cost (ms)"],
            [
                (r.chain_length, r.uncached_ms, r.hit_ms, r.speedup,
                 r.replacement_cost_ms)
                for r in results
            ],
            title="A7. Latency vs. property-chain length.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    uncached = [r.uncached_ms for r in results]
    assert uncached == sorted(uncached)
    hits = [r.hit_ms for r in results]
    assert max(hits) - min(hits) < 0.1
    assert results[-1].speedup > results[0].speedup


@pytest.mark.parametrize("length", [0, 4, 8])
def test_transform_chain_wall_time(length, benchmark):
    """Real CPU cost of executing a k-property read chain."""
    kernel = PlacelessKernel()
    user = kernel.create_user("u")
    provider = MemoryProvider(kernel.ctx, generate_text(8000, seed=1))
    reference = kernel.import_document(user, provider, "doc")
    for index in range(length):
        reference.attach(SpellingCorrectorProperty(name=f"spell-{index}"))
    benchmark(lambda: kernel.read(reference).content)
