"""A10: external-dependency policy placement (notifier vs. verifier) bench."""

from __future__ import annotations

import pytest

from repro.bench.external import run_external_placement
from repro.bench.harness import format_table


@pytest.fixture(scope="module")
def results():
    rows = run_external_placement(n_reads=400)
    return {r.placement: r for r in rows}


def test_report_and_shape(results, show, benchmark):
    show(
        "a10",
        format_table(
            ["placement", "staleness", "hit latency (ms)", "samples",
             "invalidations pushed"],
            [
                (r.placement, r.stale_ratio, r.mean_hit_latency_ms,
                 r.samples_taken, r.invalidations_pushed)
                for r in results.values()
            ],
            title="A10. Same policy, different placement.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The verifier placement is perfectly fresh but pays per-hit.
    assert results["verifier"].stale_ratio == 0.0
    assert (
        results["verifier"].mean_hit_latency_ms
        > results["notifier-fast"].mean_hit_latency_ms
    )
    # Notifier staleness scales with the polling period.
    assert (
        results["notifier-fast"].stale_ratio
        < results["notifier-slow"].stale_ratio
    )
    # ... and so does the polling load, inversely.
    assert (
        results["notifier-fast"].samples_taken
        > results["notifier-slow"].samples_taken
    )


@pytest.mark.parametrize("placement", ["verifier", "notifier-fast"])
def test_placement_runtime(placement, benchmark):
    from repro.bench.external import _run

    benchmark.pedantic(
        lambda: _run(placement, n_reads=200, read_gap_ms=120.0,
                     change_interval_ms=2000.0, poll_period_ms=500.0,
                     seed=37),
        rounds=3,
        iterations=1,
    )
