"""A6: QoS replacement-cost inflation bench."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.qos import run_qos


@pytest.fixture(scope="module")
def results():
    rows = run_qos(n_documents=100, n_qos=10, n_reads=2000)
    return {r.config: r for r in rows}


def test_report_and_shape(results, show, benchmark):
    show(
        "a6",
        format_table(
            ["config", "qos accesses", "compliant", "compliance",
             "qos mean latency (ms)"],
            [
                (r.config, r.qos_accesses, r.qos_compliant,
                 r.qos_compliance, r.qos_mean_latency_ms)
                for r in results.values()
            ],
            title="A6. QoS cost inflation under cache pressure.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        results["inflated"].qos_compliance
        > results["no-inflation"].qos_compliance
    )
    assert (
        results["inflated"].qos_mean_latency_ms
        < results["no-inflation"].qos_mean_latency_ms
    )


@pytest.mark.parametrize("inflate", [False, True], ids=["flat", "inflated"])
def test_qos_runtime(inflate, benchmark):
    from repro.bench.qos import _run_config

    benchmark.pedantic(
        lambda: _run_config(
            inflate, n_documents=50, n_qos=5, n_reads=600,
            target_ms=5.0, capacity_fraction=0.08, seed=41,
        ),
        rounds=3,
        iterations=1,
    )
