"""A1: notifier vs. verifier trade-off bench."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.notifier_verifier import run_notifier_verifier


@pytest.fixture(scope="module")
def results():
    rows = run_notifier_verifier(n_documents=30, n_events=800)
    return {r.config: r for r in rows}


def test_report_and_shape(results, show, benchmark):
    show(
        "a1",
        format_table(
            ["config", "hit ratio", "hit latency (ms)", "notifier msgs",
             "stale hits", "staleness"],
            [
                (r.config, r.hit_ratio, r.mean_hit_latency_ms,
                 r.notifier_deliveries, r.stale_hits, r.staleness_ratio)
                for r in results.values()
            ],
            title="A1. Notifier vs. verifier trade-off.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert results["both"].staleness_ratio < results["none"].staleness_ratio
    assert (
        results["verifiers-only"].mean_hit_latency_ms
        > results["notifiers-only"].mean_hit_latency_ms
    )
    assert results["notifiers-only"].notifier_deliveries > 0


@pytest.mark.parametrize("config_index", range(4),
                         ids=["none", "notifiers", "verifiers", "both"])
def test_config_runtime(config_index, benchmark):
    from repro.bench.notifier_verifier import CONFIGURATIONS, _run_one

    label, install, verify = CONFIGURATIONS[config_index]
    benchmark.pedantic(
        lambda: _run_one(
            label, install, verify,
            n_documents=20, n_events=300,
            p_write=0.04, p_out_of_band=0.04, ttl_ms=30_000.0, seed=7,
        ),
        rounds=3,
        iterations=1,
    )
