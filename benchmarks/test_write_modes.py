"""A11: write-through vs. write-back bench."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.writes import run_write_modes


@pytest.fixture(scope="module")
def results():
    rows = run_write_modes(n_saves=40, saves_per_flush=5)
    return {r.mode: r for r in rows}


def test_report_and_shape(results, show, benchmark):
    show(
        "a11",
        format_table(
            ["mode", "mean save latency (ms)", "repo commits",
             "reviewer staleness"],
            [
                (r.mode, r.mean_save_latency_ms, r.repository_commits,
                 r.reviewer_staleness)
                for r in results.values()
            ],
            title="A11. Write modes.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    through = results["write-through"]
    back = results["write-back"]
    # Write-back saves are much cheaper and commit far less often...
    assert back.mean_save_latency_ms < through.mean_save_latency_ms / 2
    assert back.repository_commits < through.repository_commits / 2
    # ...at the price of a visibility window; write-through has none.
    assert through.reviewer_staleness == 0.0
    assert back.reviewer_staleness > 0.5
    # Write-path properties still observed every buffered save (via
    # WRITE_FORWARDED), not just the flushes.
    assert back.versions_observed >= back.saves


@pytest.mark.parametrize("mode_name", ["write-through", "write-back"])
def test_mode_runtime(mode_name, benchmark):
    from repro.bench.writes import _run
    from repro.cache.manager import WriteMode

    mode = WriteMode(mode_name)
    benchmark.pedantic(
        lambda: _run(mode, n_saves=20, saves_per_flush=5,
                     document_bytes=3000, seed=59),
        rounds=3,
        iterations=1,
    )
