"""A9: collection-aware prefetch bench."""

from __future__ import annotations

import pytest

from repro.bench.collections import run_collections
from repro.bench.harness import format_table


@pytest.fixture(scope="module")
def results():
    rows = run_collections(n_collections=10, collection_size=6, n_bursts=100)
    return {r.config: r for r in rows}


def test_report_and_shape(results, show, benchmark):
    show(
        "a9",
        format_table(
            ["config", "mean read latency (ms)", "follow-read latency (ms)",
             "hit ratio", "prefetch fills"],
            [
                (r.config, r.mean_read_latency_ms,
                 r.mean_follow_latency_ms, r.hit_ratio, r.prefetch_fills)
                for r in results.values()
            ],
            title="A9. Collection-aware prefetch.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain = results["no-prefetch"]
    prefetch = results["prefetch"]
    # Prefetch accelerates the follow-on reads within a burst...
    assert prefetch.mean_follow_latency_ms < plain.mean_follow_latency_ms / 3
    # ...at the cost of speculative fills.
    assert prefetch.prefetch_fills > 0
    assert prefetch.hit_ratio >= plain.hit_ratio


@pytest.mark.parametrize("prefetch", [False, True], ids=["plain", "prefetch"])
def test_config_runtime(prefetch, benchmark):
    from repro.bench.collections import _run

    benchmark.pedantic(
        lambda: _run(prefetch, n_collections=6, collection_size=5,
                     n_bursts=50, burst=3, seed=29),
        rounds=3,
        iterations=1,
    )
