"""Table 1: document content access times (no cache / miss / hit).

Regenerates the paper's only table.  Wall-clock numbers come from
pytest-benchmark; the virtual-milliseconds table (the paper's metric) is
printed once and its shape asserted.
"""

from __future__ import annotations

import pytest

from repro.bench.table1 import format_table1, run_table1
from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import build_table1_documents


@pytest.fixture(scope="module")
def rows():
    return run_table1(repeats=5)


def test_report_table1(rows, show, benchmark):
    show("table1", format_table1(rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in rows:
        assert row.hit_ms < row.no_cache_ms / 50
        assert 0 <= row.miss_overhead_fraction < 0.05


@pytest.fixture(scope="module")
def world():
    kernel = PlacelessKernel()
    owner = kernel.create_user("eyal")
    documents = build_table1_documents(kernel, owner, ttl_ms=3.6e6)
    cache = DocumentCache(kernel, capacity_bytes=1 << 20)
    return kernel, documents, cache


@pytest.mark.parametrize("doc_index", [0, 1, 2], ids=["parcweb", "www-large", "www-small"])
def test_no_cache_read(world, doc_index, benchmark):
    kernel, documents, _ = world
    reference = documents[doc_index].reference
    result = benchmark(lambda: kernel.read(reference).content)
    assert len(result) == documents[doc_index].size_bytes


@pytest.mark.parametrize("doc_index", [0, 1, 2], ids=["parcweb", "www-large", "www-small"])
def test_cache_miss_read(world, doc_index, benchmark):
    kernel, documents, cache = world
    reference = documents[doc_index].reference

    def cold_read():
        cache.clear()
        return cache.read(reference)

    outcome = benchmark(cold_read)
    assert not outcome.hit


@pytest.mark.parametrize("doc_index", [0, 1, 2], ids=["parcweb", "www-large", "www-small"])
def test_cache_hit_read(world, doc_index, benchmark):
    kernel, documents, cache = world
    reference = documents[doc_index].reference
    cache.read(reference)  # warm
    outcome = benchmark(lambda: cache.read(reference))
    assert outcome.hit
