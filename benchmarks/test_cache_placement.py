"""A8: cache placement and two-level hierarchy bench."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.placement import run_placement


@pytest.fixture(scope="module")
def results():
    rows = run_placement(n_documents=40, n_users=5, n_events=1500)
    return {r.deployment: r for r in rows}


def test_report_and_shape(results, show, benchmark):
    show(
        "a8",
        format_table(
            ["deployment", "mean latency (ms)", "combined hit ratio",
             "kernel reads", "cached MB"],
            [
                (r.deployment, r.mean_latency_ms, r.combined_hit_ratio,
                 r.kernel_reads, r.bytes_cached / 1e6)
                for r in results.values()
            ],
            title="A8. Cache placement comparison.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # App-level hits are local, so cheaper than server-colocated hits.
    assert (
        results["app-level"].mean_latency_ms
        < results["server"].mean_latency_ms
    )
    # The shared server cache dedups content across users.
    assert results["server"].bytes_cached < results["app-level"].bytes_cached
    # §3 adoption collapses per-user fills to one full read per document.
    assert (
        results["server+adoption"].kernel_reads
        < results["server"].kernel_reads / 2
    )
    # The hierarchy with adoption is the best configuration overall.
    best = min(results.values(), key=lambda r: r.mean_latency_ms)
    assert best.deployment == "both+adoption"


@pytest.mark.parametrize("deployment", ["app-level", "server", "both+adoption"])
def test_deployment_runtime(deployment, benchmark):
    from repro.bench.placement import _run

    benchmark.pedantic(
        lambda: _run(deployment, n_documents=20, n_users=3, n_events=400,
                     capacity=64 << 20, seed=19),
        rounds=3,
        iterations=1,
    )
