"""A2: replacement policy comparison bench."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.replacement import run_replacement

POLICIES = ("gds", "gdsf", "gds-costblind", "lru", "lfu", "fifo", "size",
            "random")


@pytest.fixture(scope="module")
def results():
    rows = run_replacement(
        policies=POLICIES, n_documents=100, n_reads=1500
    )
    return rows


def test_report_and_shape(results, show, benchmark):
    show(
        "a2",
        format_table(
            ["policy", "hit ratio", "mean latency (ms)", "total latency (s)",
             "evictions"],
            [
                (r.policy, r.hit_ratio, r.mean_latency_ms,
                 r.total_latency_ms / 1000.0, r.evictions)
                for r in results
            ],
            title="A2. Replacement policies, 10%-of-corpus cache "
            "(sorted by total latency).",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_name = {r.policy: r for r in results}
    best_cost_aware = min(
        by_name["gds"].total_latency_ms, by_name["gdsf"].total_latency_ms
    )
    for baseline in ("lru", "fifo", "random"):
        assert best_cost_aware < by_name[baseline].total_latency_ms


@pytest.mark.parametrize("policy", ["gds", "lru"])
def test_policy_runtime(policy, benchmark):
    benchmark.pedantic(
        lambda: run_replacement(
            policies=(policy,), n_documents=50, n_reads=400
        ),
        rounds=3,
        iterations=1,
    )


def test_capacity_sweep_series(show, benchmark):
    from repro.bench.replacement import format_capacity_sweep, run_capacity_sweep

    sweep = run_capacity_sweep(
        policies=("gds", "lru"), fractions=(0.05, 0.25),
        n_documents=60, n_reads=600,
    )
    show("a2b", format_capacity_sweep(sweep))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for fraction, results in sweep.items():
        by_name = {r.policy: r for r in results}
        # Cost-aware GDS leads LRU on latency at every cache size.
        assert (
            by_name["gds"].mean_latency_ms <= by_name["lru"].mean_latency_ms
        ), fraction
