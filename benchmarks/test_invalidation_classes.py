"""A5: four consistency classes bench."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.invalidation import run_invalidation_classes


@pytest.fixture(scope="module")
def steps():
    return run_invalidation_classes()


def test_report_and_shape(steps, show, benchmark):
    show(
        "a5",
        format_table(
            ["mutation", "class", "invalidated", "survived", "reasons"],
            [
                (s.step, s.consistency_class,
                 ",".join(s.invalidated_users) or "-",
                 ",".join(s.survived_users) or "-",
                 ",".join(s.reasons) or "-")
                for s in steps
            ],
            title="A5. Consistency classes end-to-end.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_class = {s.consistency_class: s for s in steps}
    assert by_class["2 (personal add)"].invalidated_users == ("paul",)
    assert by_class["3 (reorder)"].invalidated_users == ("eyal",)
    assert by_class["1 (in-band)"].survived_users == ()


def test_scenario_runtime(benchmark):
    benchmark.pedantic(run_invalidation_classes, rounds=3, iterations=1)
