"""A3: content-signature sharing bench."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.sharing import run_sharing


@pytest.fixture(scope="module")
def results():
    return run_sharing(
        fractions=(0.0, 0.25, 0.5, 0.75, 1.0), n_documents=12, n_users=16
    )


def test_report_and_shape(results, show, benchmark):
    show(
        "a3",
        format_table(
            ["personalized", "entries", "distinct contents", "logical MB",
             "physical MB", "dedup factor"],
            [
                (f"{r.personalized_fraction:.0%}", r.n_entries,
                 r.distinct_contents, r.logical_bytes / 1e6,
                 r.physical_bytes / 1e6, r.dedup_factor)
                for r in results
            ],
            title="A3. Content-signature sharing vs. personalization.",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert results[0].dedup_factor == pytest.approx(16.0)
    assert results[0].dedup_factor > results[-1].dedup_factor
    assert all(r.dedup_factor >= 1.0 for r in results)


def test_sharing_runtime(benchmark):
    benchmark.pedantic(
        lambda: run_sharing(fractions=(0.5,), n_documents=8, n_users=8),
        rounds=3,
        iterations=1,
    )
