#!/usr/bin/env python3
"""A mail client over Placeless: immutable messages, a changing digest,
and collection prefetch for thread reading.

Demonstrates the append-only consistency model: individual messages are
perfect cache citizens (valid forever), while the inbox digest goes stale
the instant new mail arrives and its verifier catches that on the next
view.  A collection groups the messages of one thread so opening the
first message prefetches the rest.

Run:  python examples/mail_inbox.py
"""

from repro import DocumentCache, PlacelessKernel
from repro.placeless import DocumentCollection
from repro.properties import attach_collection_prefetch
from repro.providers import MailboxDigestProvider, MailServer, MessageProvider


def main() -> None:
    kernel = PlacelessKernel()
    karin = kernel.create_user("karin")
    mail = MailServer(kernel.ctx.clock)

    # A thread arrives.
    for sender, subject, body in [
        ("eyal@rice", "caching paper draft", b"First draft attached."),
        ("doug@parc", "re: caching paper draft", b"Comments inline."),
        ("eyal@rice", "re: re: caching paper draft", b"Addressed, thanks!"),
    ]:
        mail.deliver("karin", sender, subject, body)
        kernel.ctx.clock.advance(60_000)

    # Placeless documents: one per message plus the inbox digest.
    message_refs = [
        kernel.import_document(
            karin,
            MessageProvider(kernel.ctx, mail, "karin", uid),
            f"msg-{uid}",
        )
        for uid in (1, 2, 3)
    ]
    digest_ref = kernel.import_document(
        karin, MailboxDigestProvider(kernel.ctx, mail, "karin"), "inbox"
    )

    cache = DocumentCache(kernel, capacity_bytes=1 << 20)

    # Thread messages form a collection; opening one prefetches the rest.
    thread = DocumentCollection("caching-paper-thread", karin)
    for ref in message_refs:
        thread.add(ref)
    attach_collection_prefetch(thread, cache)

    print("== Inbox view ==")
    print(cache.read(digest_ref).content.decode())

    print("== Karin opens the first message ==")
    first = cache.read(message_refs[0])
    print(first.content.decode())
    print(f"[{first.disposition}, {first.elapsed_ms:.2f} ms; "
          f"prefetched {cache.stats.prefetch_fills} thread siblings]")

    print("\n== She reads the replies (already prefetched) ==")
    for ref in message_refs[1:]:
        outcome = cache.read(ref)
        subject = outcome.content.decode().splitlines()[1]
        print(f"  {subject}  [{outcome.disposition}, "
              f"{outcome.elapsed_ms:.3f} ms]")

    print("\n== New mail arrives ==")
    mail.deliver("karin", "pc-chair@hotos", "decision: accepted!", b"\\o/")
    digest = cache.read(digest_ref)
    print(f"[inbox re-read was a "
          f"{'hit' if digest.hit else 'miss — verifier caught new mail'}]")
    print(digest.content.decode())

    print("== But cached messages stayed valid (immutable) ==")
    again = cache.read(message_refs[0])
    print(f"message 1 re-read: {'hit' if again.hit else 'miss'}")
    print(f"\nStats: hits={cache.stats.hits} misses={cache.stats.misses} "
          f"prefetch fills={cache.stats.prefetch_fills}")


if __name__ == "__main__":
    main()
