#!/usr/bin/env python3
"""§3's heavily-customized document: a financial portfolio page.

"For a document with heavy customization, like a financial portfolio
page, the verifier may invalidate the cached entry only if there has been
significant change in the stock quotes or even modify these values as
needed."

The portfolio is a *composite* document (one part per ticker feed plus a
news part); a custom active property returns ThresholdVerifiers so the
cached page stays valid through small quote drift, is patched in place on
moderate moves, and is fully refetched only when the market really moves.

Run:  python examples/financial_portfolio.py
"""

import re

from repro import DocumentCache, PlacelessKernel
from repro.cache import ThresholdVerifier
from repro.events import EventType
from repro.placeless import ActiveProperty
from repro.providers import CompositeProvider, MemoryProvider, WebOrigin, WebProvider


class StockMarket:
    """A toy market: quotes drift when nudged."""

    def __init__(self) -> None:
        self.quotes = {"XRX": 54.25, "SUNW": 91.50}

    def nudge(self, ticker: str, delta: float) -> None:
        self.quotes[ticker] = round(self.quotes[ticker] + delta, 2)


class QuoteTrackerProperty(ActiveProperty):
    """Returns a patching ThresholdVerifier per tracked ticker.

    Small drift: cached page stays valid.  Beyond 2%: the verifier patches
    the quote into the cached page (REVALIDATED) instead of forcing a full
    recomposition of the portfolio.
    """

    execution_cost_ms = 0.3

    def __init__(self, market: StockMarket, ticker: str):
        super().__init__(f"track-{ticker}")
        self.market = market
        self.ticker = ticker

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def make_verifier(self):
        ticker = self.ticker
        market = self.market
        pattern = re.compile(rf"{ticker}: [0-9.]+".encode())

        def patch(content: bytes, value: float) -> bytes:
            return pattern.sub(f"{ticker}: {value}".encode(), content)

        return ThresholdVerifier(
            observe=lambda: market.quotes[ticker],
            baseline=market.quotes[ticker],
            threshold_fraction=0.02,
            patcher=patch,
        )


def main() -> None:
    kernel = PlacelessKernel()
    user = kernel.create_user("investor")
    market = StockMarket()

    # The portfolio composes per-ticker feeds and a news page.
    def ticker_feed(ticker: str) -> MemoryProvider:
        return MemoryProvider(
            kernel.ctx, f"{ticker}: {market.quotes[ticker]}".encode()
        )

    news_origin = WebOrigin(kernel.ctx.clock, host="www")
    news_origin.publish("/markets.html", b"Markets calm ahead of HotOS.",
                        ttl_ms=3_600_000.0)
    portfolio_provider = CompositeProvider(
        kernel.ctx,
        [
            ticker_feed("XRX"),
            ticker_feed("SUNW"),
            WebProvider(kernel.ctx, news_origin, "/markets.html"),
        ],
        composer=lambda parts: b"\n".join(parts),
    )
    portfolio = kernel.import_document(user, portfolio_provider, "portfolio")
    portfolio.attach(QuoteTrackerProperty(market, "XRX"))
    portfolio.attach(QuoteTrackerProperty(market, "SUNW"))

    cache = DocumentCache(kernel, capacity_bytes=1 << 20)

    print("== First view (miss, composes all sources) ==")
    first = cache.read(portfolio)
    print(first.content.decode())
    print(f"[{first.disposition}, {first.elapsed_ms:.2f} ms]")

    print("\n== Tiny drift: +0.50 on XRX (under 2%) ==")
    market.nudge("XRX", +0.50)
    small = cache.read(portfolio)
    print(f"[{small.disposition}, {small.elapsed_ms:.2f} ms] — "
          "cached page still valid")

    print("\n== Real move: +5.00 on XRX (beyond 2%) ==")
    market.nudge("XRX", +5.00)
    patched = cache.read(portfolio)
    print(patched.content.decode())
    print(f"[{patched.disposition}, {patched.elapsed_ms:.2f} ms] — "
          "verifier patched the quote in place")

    print(f"\nStats: hits={cache.stats.hits} misses={cache.stats.misses} "
          f"revalidations={cache.stats.verifier_revalidations} "
          f"verifier cost={cache.stats.verifier_cost_ms:.2f} ms")


if __name__ == "__main__":
    main()
