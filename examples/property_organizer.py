#!/usr/bin/env python3
"""Organizing documents by property — the Placeless way — plus caching.

No folders: documents carry statements ("budget related", "fiscal-year
1999", "read by 11/30") and queries select them.  A query result becomes
a collection, and the collection gets prefetch so reviewing the budget
documents after opening the first is instant.

Run:  python examples/property_organizer.py
"""

from repro import DocumentCache, MemoryProvider, PlacelessKernel, StaticProperty
from repro.placeless import (
    DocumentCollection,
    HasProperty,
    IsActive,
    PropertyValue,
)
from repro.properties import SummaryProperty, attach_collection_prefetch
from repro.workload import generate_text


def main() -> None:
    kernel = PlacelessKernel()
    karin = kernel.create_user("karin")
    space = kernel.space(karin)

    documents = {
        "q1-budget":    ["budget related", ("fiscal-year", 1999)],
        "q2-budget":    ["budget related", ("fiscal-year", 1999)],
        "y2k-budget":   ["budget related", ("fiscal-year", 2000)],
        "hotos-draft":  ["1999 workshop submission"],
        "trip-report":  [("read by", "11/30")],
        "lab-notes":    [],
    }
    refs = {}
    for name, labels in documents.items():
        ref = kernel.import_document(
            karin,
            MemoryProvider(kernel.ctx, generate_text(1500, seed=hash(name) % 97)),
            name,
        )
        for label in labels:
            if isinstance(label, tuple):
                ref.attach(StaticProperty(label[0], label[1]))
            else:
                ref.attach(StaticProperty(label))
        refs[name] = ref
    refs["hotos-draft"].attach(SummaryProperty())

    def show(title, query):
        names = [
            ref.reference_id.value.split("-", 1)[1]
            for ref in query.run(space)
        ]
        print(f"{title:<42} {sorted(names)}")

    print("== Property queries ==")
    show("budget related:", HasProperty("budget related"))
    show("budget related AND fiscal-year 1999:",
         HasProperty("budget related") & PropertyValue("fiscal-year", 1999))
    show("has active behaviour:", IsActive())
    show("NOT budget related:", ~HasProperty("budget related"))

    print("\n== Query -> collection -> prefetch ==")
    cache = DocumentCache(kernel, capacity_bytes=1 << 20)
    budget_docs = DocumentCollection.from_query(
        "budget-review", space, HasProperty("budget related")
    )
    attach_collection_prefetch(budget_docs, cache)
    first = budget_docs.members()[0]
    outcome = cache.read(first)
    print(f"opened {first.reference_id.value}: {outcome.disposition}, "
          f"{outcome.elapsed_ms:.2f} ms "
          f"(prefetched {cache.stats.prefetch_fills} siblings)")
    for member in budget_docs.members()[1:]:
        outcome = cache.read(member)
        print(f"  then {member.reference_id.value}: {outcome.disposition}, "
              f"{outcome.elapsed_ms:.3f} ms")


if __name__ == "__main__":
    main()
