#!/usr/bin/env python3
"""Quickstart: documents, active properties, and the cache in 60 lines.

Run:  python examples/quickstart.py
"""

from repro import DocumentCache, MemoryProvider, PlacelessKernel
from repro.properties import SpellingCorrectorProperty, TranslationProperty


def main() -> None:
    # A kernel is a whole simulated Placeless deployment: virtual clock,
    # latency model, document spaces, servers.
    kernel = PlacelessKernel()

    # Two users share one document through their own references.
    eyal = kernel.create_user("eyal")
    doug = kernel.create_user("doug")

    draft = MemoryProvider(kernel.ctx, b"Teh HotOS paper is about caching.")
    base = kernel.create_document(eyal, draft, "hotos-draft")
    eyal_ref = kernel.space(eyal).add_reference(base)
    doug_ref = kernel.space(doug).add_reference(base)

    # Personal active properties: Eyal fixes spelling, Doug reads French.
    eyal_ref.attach(SpellingCorrectorProperty())
    doug_ref.attach(TranslationProperty())

    print("Eyal sees:", kernel.read(eyal_ref).content.decode())
    print("Doug sees:", kernel.read(doug_ref).content.decode())

    # Interpose a cache between the applications and Placeless.
    cache = DocumentCache(kernel, capacity_bytes=1 << 20)

    miss = cache.read(eyal_ref)
    hit = cache.read(eyal_ref)
    print(f"\nEyal's first read : {miss.elapsed_ms:7.3f} ms ({miss.disposition})")
    print(f"Eyal's second read: {hit.elapsed_ms:7.3f} ms ({hit.disposition})")

    # Per-user versions: Doug's French copy is cached separately.
    cache.read(doug_ref)
    cache.read(doug_ref)
    print(f"\nCached entries: {len(cache)} "
          f"(distinct contents: {len(cache.store)})")

    # Consistency: Doug writes through Placeless; a notifier invalidates
    # Eyal's cached version automatically.
    cache.write(doug_ref, b"Doug rewrote teh whole thing.")
    after = cache.read(eyal_ref)
    print(f"\nAfter Doug's write, Eyal's read was a "
          f"{'hit' if after.hit else 'miss'}:")
    print("Eyal sees:", after.content.decode())  # spell-corrected again

    print(f"\nCache stats: {cache.stats.hits} hits, "
          f"{cache.stats.misses} misses, "
          f"hit ratio {cache.stats.hit_ratio:.2f}")


if __name__ == "__main__":
    main()
