#!/usr/bin/env python3
"""Figures 1 & 2 of the paper as a runnable scenario.

Eyal, Paul and Doug collaborate on the HotOS paper draft stored on PARC's
NFS filer.  The base document carries a universal versioning property;
Eyal personalizes with a spelling corrector and nightly PARC→Rice
replication; Paul and Doug attach static labels.  MS-Word stands in for
an off-the-shelf application driving everything through the NFS layer.

Run:  python examples/hotos_paper_scenario.py
"""

from repro import NFSServer, PlacelessKernel, StaticProperty
from repro.providers import FileSystemProvider, SimulatedFileSystem
from repro.properties import (
    ReplicationProperty,
    SpellingCorrectorProperty,
    VersioningProperty,
)

ONE_DAY_MS = 24 * 60 * 60 * 1000.0


def main() -> None:
    kernel = PlacelessKernel()
    eyal = kernel.create_user("eyal")
    paul = kernel.create_user("paul")
    doug = kernel.create_user("doug")

    # The draft lives on PARC's filer; the bit-provider is an NFS client.
    parc = SimulatedFileSystem(kernel.ctx.clock)
    parc.write(
        "/tilde/edelara/hotos.doc",
        b"Caching documnet with active propertys.\n"
        b"This draft still has teh usual typos.",
    )
    base = kernel.create_document(
        eyal,
        FileSystemProvider(kernel.ctx, parc, "/tilde/edelara/hotos.doc"),
        "hotos.doc",
    )

    # Universal property: version on every write, visible to all users.
    versioning = VersioningProperty()
    base.attach(versioning)

    # Per-user references with personal properties (Figure 1).
    eyal_ref = kernel.space(eyal).add_reference(base, "hotos.doc")
    paul_ref = kernel.space(paul).add_reference(base, "hotos.doc")
    doug_ref = kernel.space(doug).add_reference(base, "hotos.doc")

    rice = SimulatedFileSystem(kernel.ctx.clock)
    eyal_ref.attach(SpellingCorrectorProperty())
    eyal_ref.attach(
        ReplicationProperty(kernel.timers, rice, "/home/edelara/hotos.doc")
    )
    paul_ref.attach(StaticProperty("1999 workshop submission"))
    doug_ref.attach(StaticProperty("read by", "11/30"))

    # Off-the-shelf applications go through the NFS layer (Figure 2).
    nfs = NFSServer(kernel)
    eyal_word = nfs.mount(eyal)
    eyal_word.bind("/hotos.doc", eyal_ref)
    doug_word = nfs.mount(doug)
    doug_word.bind("/hotos.doc", doug_ref)

    print("== What each collaborator sees ==")
    print("Eyal (spell-corrected):", eyal_word.read_file("/hotos.doc").decode())
    print("Doug (raw)            :", kernel.read(doug_ref).content.decode())

    print("\n== Eyal saves from MS-Word ==")
    eyal_word.write_file(
        "/hotos.doc",
        b"Caching documents with active properties.\n"
        b"Now with teh typos fixed on the write path.",
    )
    print("Stored at PARC:", parc.read("/tilde/edelara/hotos.doc").decode())
    print(f"Versions archived: {versioning.version_count}")
    link = base.find_property("version-1")
    print("Version-1 content:",
          versioning.get_version(link.value).decode().splitlines()[0])

    print("\n== Doug revises ==")
    doug_word.write_file("/hotos.doc", b"Doug's revision, eagerly written.")
    print(f"Versions archived: {versioning.version_count}")

    print("\n== End of day: replication to Rice fires ==")
    kernel.ctx.clock.advance(ONE_DAY_MS + 1)
    print("Rice replica:", rice.read("/home/edelara/hotos.doc").decode())

    print("\n== Property listing ==")
    print("Base      :", [p.name for p in base.properties])
    print("Eyal ref  :", [p.name for p in eyal_ref.properties])
    print("Paul ref  :", [p.name for p in paul_ref.properties])
    print("Doug ref  :", [p.name for p in doug_ref.properties])


if __name__ == "__main__":
    main()
