#!/usr/bin/env python3
"""A small capacity-planning study using the workload toolkit.

Sweeps cache capacity (as a fraction of corpus bytes) for two replacement
policies over a Zipf trace and prints the hit-ratio / mean-latency curve
— the kind of study a deployer of the Placeless cache would run before
sizing an application-level cache.

Run:  python examples/proxy_cache_study.py
"""

from repro import DocumentCache, PlacelessKernel
from repro.bench.harness import format_table
from repro.cache import make_policy
from repro.workload import CorpusSpec, build_corpus, zipf_indices


def run_point(policy_name: str, capacity_fraction: float,
              n_documents: int = 80, n_reads: int = 1500, seed: int = 13):
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    capacity = max(2048, int(
        sum(d.size_bytes for d in corpus) * capacity_fraction
    ))
    cache = DocumentCache(
        kernel, capacity_bytes=capacity, policy=make_policy(policy_name)
    )
    total_ms = 0.0
    for index in zipf_indices(n_documents, n_reads, alpha=0.8, seed=seed + 1):
        total_ms += cache.read(corpus[index].reference).elapsed_ms
    return cache.stats.hit_ratio, total_ms / n_reads


def main() -> None:
    rows = []
    for fraction in (0.02, 0.05, 0.10, 0.25, 0.50):
        for policy in ("gds", "lru"):
            hit_ratio, mean_latency = run_point(policy, fraction)
            rows.append((f"{fraction:.0%}", policy, hit_ratio, mean_latency))
    print(
        format_table(
            ["capacity", "policy", "hit ratio", "mean latency (ms)"],
            rows,
            title="Cache sizing study: Zipf(0.8) trace over an 80-document "
            "multi-repository corpus.",
        )
    )


if __name__ == "__main__":
    main()
