"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider
from repro.providers.simfs import SimulatedFileSystem
from repro.providers.web import WebOrigin
from repro.sim.context import SimContext


@pytest.fixture
def ctx() -> SimContext:
    """A fresh deterministic simulation context."""
    return SimContext()


@pytest.fixture
def kernel() -> PlacelessKernel:
    """A fresh kernel with its own context."""
    return PlacelessKernel()


@pytest.fixture
def user(kernel):
    """One registered user."""
    return kernel.create_user("alice")


@pytest.fixture
def other_user(kernel):
    """A second registered user."""
    return kernel.create_user("bob")


@pytest.fixture
def memory_reference(kernel, user):
    """A reference to a memory-backed document owned by *user*."""
    provider = MemoryProvider(kernel.ctx, b"the quick brown fox")
    return kernel.import_document(user, provider, "memo")


@pytest.fixture
def filesystem(kernel) -> SimulatedFileSystem:
    """A simulated filer on the kernel's clock."""
    return SimulatedFileSystem(kernel.ctx.clock)


@pytest.fixture
def web_origin(kernel) -> WebOrigin:
    """A simulated parcweb origin on the kernel's clock."""
    return WebOrigin(kernel.ctx.clock, host="parcweb")
