"""Cluster coordinator behaviour: routing, sharing, topology churn.

Each deployment is a real multi-shard cluster over one kernel; the
assertions pin the tentpole contracts — placement-consistent routing,
cross-shard memo imports with exact store refcounts, cluster-wide
invalidation fan-out, and rebalance/shard-loss repaired through the
reused anti-entropy resync rather than a parallel repair path.
"""

from __future__ import annotations

import pytest

from repro.cache.entry import EntryKey
from repro.cache.manager import DocumentCache
from repro.cache.memo import TransformMemo
from repro.cache.policies import (
    DefaultConcurrencyPolicy,
    DefaultMemoPolicy,
    DefaultRecoveryPolicy,
)
from repro.cluster import (
    CacheCluster,
    ClusterPolicy,
    DefaultClusterPolicy,
)
from repro.errors import CacheError
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

_SEED = 11


def _deploy(
    shard_count: int,
    shared: bool,
    n_users: int = 8,
    n_documents: int = 4,
    recovery: bool = True,
    concurrency: bool = True,
    name: str = "t",
):
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=_SEED),
    )
    for document in corpus:
        document.reference.base.attach(TranslationProperty())
    population = build_population(
        kernel, corpus, n_users, personalized_fraction=0.0, seed=_SEED
    )
    cluster = CacheCluster(
        kernel,
        shard_count,
        capacity_bytes=1 << 30,
        cluster_policy=DefaultClusterPolicy() if shared else None,
        memo_policy=DefaultMemoPolicy(),
        concurrency_policy=(
            DefaultConcurrencyPolicy() if concurrency else None
        ),
        recovery_policy=DefaultRecoveryPolicy() if recovery else None,
        name=name,
    )
    return kernel, corpus, population, cluster


def _all_references(population, n_users: int, n_documents: int):
    return [
        population.reference(user, document)
        for user in range(n_users)
        for document in range(n_documents)
    ]


class TestConstructionAndRouting:
    def test_shard_count_validated(self):
        kernel = PlacelessKernel()
        with pytest.raises(CacheError):
            CacheCluster(kernel, 0, capacity_bytes=1 << 20)

    def test_share_memo_requires_memo_policy(self):
        kernel = PlacelessKernel()
        with pytest.raises(CacheError):
            CacheCluster(
                kernel,
                2,
                capacity_bytes=1 << 20,
                cluster_policy=DefaultClusterPolicy(),
            )

    def test_default_policy_satisfies_protocol_and_validates(self):
        assert isinstance(DefaultClusterPolicy(), ClusterPolicy)
        with pytest.raises(CacheError):
            DefaultClusterPolicy(shared_memo_capacity=0)

    def test_injected_memo_requires_memo_policy_on_the_cache(self):
        kernel = PlacelessKernel()
        with pytest.raises(CacheError):
            DocumentCache(
                kernel, capacity_bytes=1 << 20, memo=TransformMemo(16)
            )

    def test_reads_land_on_the_placed_shard(self):
        _, _, population, cluster = _deploy(4, shared=False)
        for reference in _all_references(population, 8, 4):
            shard = cluster.shard_for(reference)
            before = shard.stats.hits + shard.stats.misses
            cluster.read(reference)
            assert shard.stats.hits + shard.stats.misses == before + 1

    def test_entries_spread_over_multiple_shards(self):
        _, _, population, cluster = _deploy(4, shared=False)
        for outcome in cluster.read_many(
            _all_references(population, 8, 4)
        ):
            assert outcome.content
        populated = [s for s in cluster.shards.values() if len(s)]
        assert len(populated) >= 2
        assert len(cluster) == sum(len(s) for s in populated)
        assert cluster.describe().count("entries") >= len(populated)

    def test_shared_planes_are_single_objects(self):
        _, _, _, cluster = _deploy(4, shared=True)
        cores = [shard.core for shard in cluster.shards.values()]
        assert all(core.memo is cluster.shared_memo for core in cores)
        assert all(
            core.flights is cluster.shared_flights for core in cores
        )
        assert cluster.shared_memo.attached() == list(cluster.shards)

    def test_isolated_planes_are_private(self):
        _, _, _, cluster = _deploy(3, shared=False)
        memos = {id(shard.core.memo) for shard in cluster.shards.values()}
        flights = {
            id(shard.core.flights) for shard in cluster.shards.values()
        }
        assert len(memos) == 3 and len(flights) == 3
        assert cluster.shared_memo is None
        assert cluster.shared_flights is None


class TestCrossShardMemoSharing:
    def test_imports_avoid_chain_executions(self):
        kernel_i, _, population_i, isolated = _deploy(
            4, shared=False, name="iso"
        )
        references = _all_references(population_i, 8, 4)
        before = kernel_i.stats.reads
        isolated.read_many(references)
        isolated_chains = kernel_i.stats.reads - before

        kernel_s, _, population_s, shared = _deploy(
            4, shared=True, name="shr"
        )
        references = _all_references(population_s, 8, 4)
        before = kernel_s.stats.reads
        outcomes = shared.read_many(references)
        shared_chains = kernel_s.stats.reads - before

        assert shared.shared_memo.imports > 0
        assert shared.shared_memo.import_bytes > 0
        assert shared_chains * 2 <= isolated_chains
        memo_stats = shared.memo_stats
        assert memo_stats is not None
        assert memo_stats.imports == shared.shared_memo.imports
        assert memo_stats.adoptions >= memo_stats.imports
        # Imported entries serve the same transformed bytes.
        by_document = {}
        for reference, outcome in zip(references, outcomes):
            document_id = reference.base.document_id
            by_document.setdefault(document_id, set()).add(outcome.content)
        assert all(len(contents) == 1 for contents in by_document.values())

    def test_imports_charge_the_shard_link(self):
        kernel, _, population, cluster = _deploy(4, shared=True)
        charged: list[str] = []
        original = kernel.ctx.charge_hop

        def recording_charge(hop, size_bytes=0):
            charged.append(hop)
            return original(hop, size_bytes)

        kernel.ctx.charge_hop = recording_charge
        cluster.read_many(_all_references(population, 8, 4))
        assert cluster.shared_memo.imports > 0
        assert charged.count("shard-to-shard") == (
            cluster.shared_memo.imports
        )

    def test_imported_bytes_survive_a_donor_crash(self):
        # The import *copies* bytes into the requester's store: the
        # donor dying afterwards must not corrupt the importer.
        _, corpus, population, cluster = _deploy(4, shared=True)
        references = _all_references(population, 8, 4)
        first = [o.content for o in cluster.read_many(references)]
        assert cluster.shared_memo.imports > 0
        cluster.lose_shard(next(iter(cluster.shards)))
        second = cluster.read_many(references)
        for reference, outcome, original in zip(
            references, second, first
        ):
            placed = cluster.shard_for(reference)
            if EntryKey.for_reference(reference) in placed:
                assert outcome.content == original

    def test_shared_flight_coalescing_engages_across_the_batch(self):
        _, _, population, cluster = _deploy(4, shared=True)
        cluster.read_many(_all_references(population, 8, 4))
        stats = cluster.concurrency_stats
        assert stats is not None
        assert stats.follows > 0


class TestInvalidationFanout:
    def test_fanout_counts_shards_actually_holding_entries(self):
        _, corpus, population, cluster = _deploy(4, shared=False)
        cluster.read_many(_all_references(population, 8, 4))
        document_id = corpus[0].reference.base.document_id
        holding = sum(
            1
            for shard in cluster.shards.values()
            if any(
                entry.key.document_id == document_id
                for entry in shard.entries()
            )
        )
        dropped = cluster.invalidate_document(document_id)
        assert dropped > 0
        assert cluster.invalidations == 1
        assert cluster.invalidation_shard_touches == holding
        # Idempotent second pass touches nothing.
        assert cluster.invalidate_document(document_id) == 0
        assert cluster.invalidation_shard_touches == holding

    def test_invalidated_documents_refetch_fresh_content(self):
        _, corpus, population, cluster = _deploy(2, shared=True)
        reference = population.reference(0, 0)
        cluster.read(reference)
        corpus[0].provider.mutate_out_of_band(b"fresh bytes after edit")
        cluster.invalidate_document(corpus[0].reference.base.document_id)
        assert b"fresh bytes" in cluster.read(reference).content.lower()


class TestTopologyChurn:
    def test_rebalance_requires_recovery(self):
        _, _, _, cluster = _deploy(2, shared=False, recovery=False)
        with pytest.raises(CacheError):
            cluster.rebalance()

    def test_rebalance_is_a_noop_on_a_stable_ring(self):
        _, _, population, cluster = _deploy(3, shared=False)
        cluster.read_many(_all_references(population, 8, 4))
        assert cluster.rebalance() == 0
        assert cluster.rebalance_repairs == 0

    def test_add_shard_resyncs_replaced_entries_away(self):
        _, _, population, cluster = _deploy(3, shared=True)
        references = _all_references(population, 8, 4)
        first = [o.content for o in cluster.read_many(references)]
        entries_before = len(cluster)
        new_name = cluster.add_shard()
        assert new_name in cluster.shards
        assert cluster.rebalance_repairs > 0
        assert len(cluster) == entries_before - cluster.rebalance_repairs
        # Every surviving entry sits where the ring now places it.
        for shard_name, shard in cluster.shards.items():
            for entry in shard.entries():
                assert cluster._placement.place(entry.key) == shard_name
        second = [o.content for o in cluster.read_many(references)]
        assert second == first

    def test_lose_shard_recovers_through_survivors(self):
        _, _, population, cluster = _deploy(4, shared=True)
        references = _all_references(population, 8, 4)
        first = [o.content for o in cluster.read_many(references)]
        victim = next(iter(cluster.shards))
        cluster.lose_shard(victim)
        assert victim not in cluster.shards
        assert cluster.shard_count == 3
        assert victim not in cluster.shared_memo.attached()
        second = [o.content for o in cluster.read_many(references)]
        assert second == first

    def test_lose_unknown_shard_rejected(self):
        _, _, _, cluster = _deploy(2, shared=False)
        with pytest.raises(CacheError):
            cluster.lose_shard("nope")

    def test_lose_shard_purges_conservatively_then_repopulates(self):
        _, _, population, cluster = _deploy(4, shared=True)
        references = _all_references(population, 8, 4)
        cluster.read_many(references)
        assert len(cluster.shared_memo) > 0
        cluster.lose_shard(next(iter(cluster.shards)))
        # The survivors' anti-entropy resync purges the shared plane —
        # every record is under the same suspicion — and the next
        # reads rebuild it.
        assert len(cluster.shared_memo) == 0
        cluster.read_many(references)
        assert len(cluster.shared_memo) > 0

    def test_dead_members_crash_spares_the_shared_plane(self):
        # The detach-before-crash ordering lose_shard relies on: a
        # crashed member purges only its own (already severed) view.
        _, _, population, cluster = _deploy(4, shared=True)
        cluster.read_many(_all_references(population, 8, 4))
        records_before = len(cluster.shared_memo)
        assert records_before > 0
        victim_name, victim = next(iter(cluster.shards.items()))
        cluster.shared_memo.detach(victim_name)
        victim.core.memo = None
        victim.crash()
        assert len(cluster.shared_memo) == records_before


class TestSequentialFallback:
    def test_read_many_without_concurrency_is_sequential(self):
        _, _, population, cluster = _deploy(
            2, shared=False, concurrency=False
        )
        references = _all_references(population, 4, 4)
        outcomes = cluster.read_many(references)
        assert [o.content for o in outcomes] == [
            o.content for o in cluster.read_many(references)
        ]
        assert cluster.concurrency_stats is None
        assert cluster.read_many([], return_exceptions=True) == []


class TestSingleCacheParity:
    def test_one_shard_no_policy_is_byte_identical(self):
        from repro.bench.cluster import check_parity

        parity = check_parity(seed=_SEED)
        assert parity["parity_ok"], parity
