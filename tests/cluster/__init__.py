"""Cluster-layer tier: sharded topology, placement, cross-shard sharing."""
