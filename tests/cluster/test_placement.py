"""Placement properties: ring balance, minimal movement, pinning.

The consistent-hash ring's contract is structural — deterministic
placement, membership, and *minimal key movement* under shard
join/leave (only keys entering or leaving the changed shard may move).
Those are checked as hypothesis properties over seed-derived key
populations.  Balance is checked at pinned shapes (md5 is
deterministic, so the bound either holds forever or never).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.entry import EntryKey
from repro.cluster.placement import (
    HashRingPolicy,
    PlacementPolicy,
    PlacementRing,
    ReinforcedCounterPolicy,
    placement_label,
)
from repro.errors import WorkloadError


def _keys(n: int, seed: int = 0) -> list[EntryKey]:
    """*n* distinct seed-derived (document, user) keys."""
    state = seed or 1
    keys = []
    for index in range(n):
        state = (state * 1103515245 + 12345) % (1 << 31)
        keys.append(
            EntryKey(f"doc-{seed}-{index}", f"user-{state % 97}")
        )
    return keys


class TestPlacementRing:
    def test_empty_ring_refuses_placement(self):
        with pytest.raises(WorkloadError):
            PlacementRing().place(EntryKey("d", "u"))

    def test_duplicate_and_unknown_shards_rejected(self):
        ring = PlacementRing(["a"])
        with pytest.raises(WorkloadError):
            ring.add_shard("a")
        with pytest.raises(WorkloadError):
            ring.remove_shard("b")
        with pytest.raises(WorkloadError):
            PlacementRing(replicas=0)

    def test_membership_and_len(self):
        ring = PlacementRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.shards == ["a", "b"]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_placement_is_deterministic_and_member(self, seed):
        ring = PlacementRing(["a", "b", "c"])
        for key in _keys(50, seed):
            shard = ring.place(key)
            assert shard == ring.place(key)
            assert shard in ring

    def test_balance_within_bounds(self):
        # 64 virtual nodes per shard keeps the max/ideal load factor
        # small; assert a loose 2x bound plus no starved shard.
        ring = PlacementRing(["a", "b", "c", "d"])
        counts = dict.fromkeys(ring.shards, 0)
        keys = _keys(2000)
        for key in keys:
            counts[ring.place(key)] += 1
        ideal = len(keys) / len(ring)
        assert min(counts.values()) > 0
        assert max(counts.values()) <= 2.0 * ideal

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_join_moves_keys_only_onto_the_new_shard(self, seed):
        ring = PlacementRing(["a", "b", "c"])
        keys = _keys(120, seed)
        before = {placement_label(k): ring.place(k) for k in keys}
        ring.add_shard("d")
        for key in keys:
            after = ring.place(key)
            if after != before[placement_label(key)]:
                assert after == "d"

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_leave_moves_only_the_dead_shards_keys(self, seed):
        ring = PlacementRing(["a", "b", "c", "d"])
        keys = _keys(120, seed)
        before = {placement_label(k): ring.place(k) for k in keys}
        ring.remove_shard("d")
        for key in keys:
            previous = before[placement_label(key)]
            after = ring.place(key)
            if previous != "d":
                assert after == previous
            else:
                assert after != "d"


class TestHashRingPolicy:
    def test_satisfies_protocol_and_delegates(self):
        policy = HashRingPolicy(["a", "b"])
        assert isinstance(policy, PlacementPolicy)
        key = EntryKey("doc", "user")
        placed = policy.place(key)
        policy.note_access(key)  # stateless: must not change placement
        assert policy.place(key) == placed
        policy.add_shard("c")
        assert policy.shards() == ["a", "b", "c"]
        policy.remove_shard("c")
        assert policy.shards() == ["a", "b"]


class TestReinforcedCounterPolicy:
    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            ReinforcedCounterPolicy(["a"], pin_threshold=0)
        with pytest.raises(WorkloadError):
            ReinforcedCounterPolicy(["a"], pin_threshold=3, counter_cap=2)
        with pytest.raises(WorkloadError):
            ReinforcedCounterPolicy(["a"], decay_interval=0)

    def test_hot_key_pins_to_its_serving_shard(self):
        policy = ReinforcedCounterPolicy(
            ["a", "b", "c"], pin_threshold=3, decay_interval=10_000
        )
        key = EntryKey("hot-doc", "hot-user")
        home = policy.place(key)
        for _ in range(3):
            policy.note_access(key)
        assert policy.pinned == {placement_label(key): home}
        # A ring change that would move the key is deferred by the pin.
        policy.add_shard("d")
        assert policy.place(key) == home

    def test_cold_keys_never_pin(self):
        policy = ReinforcedCounterPolicy(
            ["a", "b"], pin_threshold=3, decay_interval=10_000
        )
        for key in _keys(40):
            policy.note_access(key)  # one access each: all cold
        assert policy.pinned == {}

    def test_decay_unpins_cooled_keys(self):
        policy = ReinforcedCounterPolicy(
            ["a", "b"], pin_threshold=4, counter_cap=4, decay_interval=8
        )
        hot = EntryKey("hot", "u")
        for _ in range(4):
            policy.note_access(hot)
        assert placement_label(hot) in policy.pinned
        # Fill out decay intervals with cold traffic; 4 → 2 → 1 < 4.
        cold = _keys(16, seed=9)
        for index in range(16):
            policy.note_access(cold[index])
        assert placement_label(hot) not in policy.pinned
        assert policy.place(hot) == policy.ring.place(hot)

    def test_losing_the_pinned_shard_voids_the_pin(self):
        policy = ReinforcedCounterPolicy(
            ["a", "b", "c"], pin_threshold=2, decay_interval=10_000
        )
        key = EntryKey("doc", "user")
        home = policy.place(key)
        for _ in range(2):
            policy.note_access(key)
        assert policy.pinned[placement_label(key)] == home
        policy.remove_shard(home)
        assert placement_label(key) not in policy.pinned
        assert policy.place(key) != home
