"""Sequential ≡ async equivalence, extended to ``CacheCluster.read_many``.

The single-cache property (tests/property/test_prop_scheduler.py)
promises that driving a read burst through the asyncio scheduler serves
byte-identical content to sequential reads.  The cluster fans one
``read_many`` batch across shards on one scheduler, with cross-shard
single-flight and memo imports in the middle — so the property is
re-stated at cluster scope: per-burst bytes are identical whether the
burst runs as routed sequential ``read`` calls or as one fanned
``read_many``, on a healthy 3-shard shared deployment.

Under the chaos plan the two modes legitimately diverge (coalescing
changes the per-seam RNG draw sequence), so at the pinned chaos seeds
77/101/202 the properties are per-mode: determinism (same seed twice →
identical outcome sequence and aggregate stats) and conservation of
``hits + misses``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import DefaultConcurrencyPolicy, DefaultMemoPolicy
from repro.cluster import CacheCluster, DefaultClusterPolicy
from repro.faults.plan import FaultPlan
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

_N_DOCUMENTS = 5
_N_USERS = 4
_N_SHARDS = 3
_CHAOS_SEEDS = (77, 101, 202)


def _build(seed: int, chaos: bool = False):
    kernel = PlacelessKernel()
    if chaos:
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock,
            seed=seed,
            fetch_failure_probability=0.05,
            notifier_loss_probability=0.10,
            notifier_delay_probability=0.10,
            notifier_delay_ms=150.0,
            verifier_failure_probability=0.02,
        )
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=_N_DOCUMENTS, ttl_ms=3_600_000.0, seed=seed),
    )
    population = build_population(
        kernel, corpus, _N_USERS, personalized_fraction=0.5, seed=seed
    )
    cluster = CacheCluster(
        kernel,
        _N_SHARDS,
        capacity_bytes=1 << 30,
        cluster_policy=DefaultClusterPolicy(),
        concurrency_policy=DefaultConcurrencyPolicy(),
        memo_policy=DefaultMemoPolicy(),
        shard_kwargs={"serve_stale_on_error": chaos},
        name=f"cluster-prop-{seed}",
    )
    return kernel, corpus, population, cluster


def _script(seed: int) -> list[tuple]:
    """Seed-derived interleaving of read bursts, writes and oob edits."""
    operations: list[tuple] = []
    state = seed or 1
    for step in range(60):
        state = (state * 1103515245 + 12345) % (1 << 31)
        action = (state >> 16) % 10
        if action < 7:
            burst = []
            width = 2 + (state % 6)
            for position in range(width):
                mixed = (state >> (position + 1)) % (1 << 16)
                burst.append(
                    (mixed % _N_USERS, (mixed >> 4) % _N_DOCUMENTS)
                )
            operations.append(("burst", tuple(burst)))
        elif action < 9:
            operations.append(
                ("write", state % _N_USERS, (state >> 8) % _N_DOCUMENTS, step)
            )
        else:
            operations.append(("oob", (state >> 8) % _N_DOCUMENTS, step))
    return operations


def _run(seed: int, concurrent: bool, chaos: bool = False):
    """Execute the script; one result list per burst, burst order."""
    kernel, corpus, population, cluster = _build(seed, chaos=chaos)
    results: list[list] = []
    for operation in _script(seed):
        if operation[0] == "burst":
            references = [
                population.reference(user, document)
                for user, document in operation[1]
            ]
            if concurrent:
                outcomes = cluster.read_many(
                    references, return_exceptions=True
                )
            else:
                outcomes = []
                for reference in references:
                    try:
                        outcomes.append(cluster.read(reference))
                    except Exception as error:
                        outcomes.append(error)
            results.append([
                type(o).__name__ if isinstance(o, BaseException)
                else o.content
                for o in outcomes
            ])
        elif operation[0] == "write":
            _, user, document, step = operation
            cluster.write(
                population.reference(user, document),
                f"write {step} by {user}".encode(),
            )
        else:
            _, document, step = operation
            corpus[document].provider.mutate_out_of_band(
                f"out-of-band {step}".encode()
            )
    return results, cluster


def _served(results: list[list]) -> int:
    return sum(
        1
        for burst in results
        for result in burst
        if isinstance(result, bytes)
    )


class TestClusterSequentialAsyncEquivalence:
    """Healthy runs: fanned and sequential reads serve the same bytes."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_byte_identical_content(self, seed):
        sequential, _ = _run(seed, concurrent=False)
        concurrent, _ = _run(seed, concurrent=True)
        assert sequential == concurrent

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_hits_plus_misses_conserved_in_both_modes(self, seed):
        for concurrent in (False, True):
            results, cluster = _run(seed, concurrent=concurrent)
            stats = cluster.aggregate_stats()
            assert stats.hits + stats.misses == _served(results)

    def test_cross_shard_sharing_actually_engages(self):
        # Guard against vacuous equivalence: some pinned seed must
        # produce real follows AND real cross-shard memo imports.
        for seed in range(20):
            _, cluster = _run(seed, concurrent=True)
            follows = cluster.concurrency_stats.follows
            imports = cluster.shared_memo.imports
            if follows > 0 and imports > 0:
                return
        raise AssertionError(
            "no seed in 0..19 exercised cross-shard coalescing + imports"
        )


class TestClusterChaosSeeds:
    """Pinned chaos seeds: per-mode determinism + conservation."""

    @pytest.mark.parametrize("seed", _CHAOS_SEEDS)
    def test_async_chaos_is_deterministic(self, seed):
        first, first_cluster = _run(seed, concurrent=True, chaos=True)
        second, second_cluster = _run(seed, concurrent=True, chaos=True)
        assert first == second
        assert vars(first_cluster.aggregate_stats()) == vars(
            second_cluster.aggregate_stats()
        )

    @pytest.mark.parametrize("seed", _CHAOS_SEEDS)
    def test_sequential_chaos_is_deterministic(self, seed):
        first, _ = _run(seed, concurrent=False, chaos=True)
        second, _ = _run(seed, concurrent=False, chaos=True)
        assert first == second

    @pytest.mark.parametrize("seed", _CHAOS_SEEDS)
    def test_conservation_holds_under_chaos_in_both_modes(self, seed):
        for concurrent in (False, True):
            results, cluster = _run(seed, concurrent=concurrent, chaos=True)
            stats = cluster.aggregate_stats()
            assert stats.hits + stats.misses == _served(results)
