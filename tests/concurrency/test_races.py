"""Targeted tests for the two shared structures the concurrent
scheduler exposed: the instrumentation bus's subscriber collection and
the transform memo's record table.

Cooperative concurrency means no data tears, but interleaving at
suspension points still breaks the old assumptions: a subscriber list
mutated while an emit iterates it skips deliveries, and a memo discard
decided before a suspension can land after another read re-recorded the
same key.  DESIGN.md §3.3 documents the disciplines; these tests pin
them.
"""

from __future__ import annotations

from repro.cache.instrumentation import InstrumentationBus, StageEvent
from repro.cache.manager import DocumentCache
from repro.cache.memo import ChainFingerprint, MemoRecord, TransformMemo
from repro.cache.policies import DefaultConcurrencyPolicy, DefaultMemoPolicy
from repro.content.signature import sign
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext


def _event(outcome="probe"):
    return StageEvent(stage="test", outcome=outcome)


class TestInstrumentationBusCopyOnWrite:
    """Subscription changes never corrupt an in-progress emit."""

    def test_unsubscribe_during_emit_delivers_to_the_full_snapshot(self):
        bus = InstrumentationBus()
        seen: list[str] = []

        def first(event):
            seen.append("first")
            # The classic mutated-during-iteration bug: removing the
            # *current* subscriber mid-emit made list iteration skip
            # the next one.  The copy-on-write tuple must not.
            bus.unsubscribe(first)

        bus.subscribe(first)
        bus.subscribe(lambda event: seen.append("second"))
        bus.subscribe(lambda event: seen.append("third"))
        bus.emit(_event())
        assert seen == ["first", "second", "third"]
        seen.clear()
        bus.emit(_event())
        assert seen == ["second", "third"]

    def test_subscribe_during_emit_takes_effect_next_emit(self):
        bus = InstrumentationBus()
        seen: list[str] = []

        def late(event):
            seen.append("late")

        def eager(event):
            seen.append("eager")
            bus.unsubscribe(eager)
            bus.subscribe(late)

        bus.subscribe(eager)
        bus.emit(_event())
        assert seen == ["eager"]  # late not retroactively delivered
        bus.emit(_event())
        assert seen == ["eager", "late"]

    def test_unsubscribe_bound_method_matches_by_equality(self):
        bus = InstrumentationBus()
        sink: list = []
        bus.subscribe(sink.append)
        assert bus.has_subscribers
        bus.unsubscribe(sink.append)  # a *fresh* bound-method object
        assert not bus.has_subscribers

    def test_subscriber_detaching_mid_batch_misses_no_events(self):
        # The integration shape: a probe subscriber detaches itself on
        # the first coalesce event while a 8-way concurrent batch is
        # still emitting from interleaved reads.
        ctx = SimContext()
        kernel = PlacelessKernel(ctx)
        owner = kernel.create_user("owner")
        base = kernel.create_document(
            owner, MemoryProvider(ctx, b"race" * 32), "doc"
        )
        reference = kernel.space(owner).add_reference(base)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            concurrency_policy=DefaultConcurrencyPolicy(),
        )
        observed: list[str] = []

        def probe(event):
            if event.stage == "coalesce":
                observed.append(event.outcome)
                cache.instrumentation.unsubscribe(probe)

        cache.instrumentation.subscribe(probe)
        outcomes = cache.read_many([reference] * 8)
        # The probe saw exactly one event (then detached), the batch
        # completed unharmed, and the built-in projections — later in
        # the same subscriber tuple — kept counting everything.
        assert observed == ["led"]
        assert len(outcomes) == 8
        assert cache.concurrency_stats.follows == 7
        assert cache.stats.hits + cache.stats.misses == 8


class TestMemoDiscardIdentityGuard:
    """A stale discard must not drop a freshly re-recorded key."""

    @staticmethod
    def _record(content: bytes, output: bytes) -> MemoRecord:
        return MemoRecord(
            source_signature=sign(content),
            fingerprint=ChainFingerprint.compose(()),
            output_signature=sign(output),
            size=len(output),
        )

    def test_discard_of_superseded_record_is_a_no_op(self):
        memo = TransformMemo(capacity=8)
        stale = self._record(b"source", b"old output")
        memo.record(stale)
        fresh = self._record(b"source", b"new output")
        assert fresh.key == stale.key  # same (source, fingerprint) key
        memo.record(fresh)
        # The interleaving: a read resolved `stale`, suspended at a
        # seam, and resumes to discard it after another read recorded
        # `fresh` under the same key.
        memo.discard(stale)
        assert memo.lookup(*fresh.key) is fresh

    def test_discard_of_the_live_record_still_works(self):
        memo = TransformMemo(capacity=8)
        record = self._record(b"source", b"output")
        memo.record(record)
        memo.discard(record)
        assert memo.lookup(*record.key) is None
        memo.discard(record)  # idempotent
        assert len(memo) == 0

    def test_concurrent_batch_with_memo_keeps_table_consistent(self):
        ctx = SimContext()
        kernel = PlacelessKernel(ctx)
        owner = kernel.create_user("owner")
        base = kernel.create_document(
            owner, MemoryProvider(ctx, b"memo race" * 16), "doc"
        )
        references = [
            kernel.space(kernel.create_user(f"u{i}")).add_reference(base)
            for i in range(6)
        ]
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            concurrency_policy=DefaultConcurrencyPolicy(),
            memo_policy=DefaultMemoPolicy(),
        )
        first = cache.read_many(references)
        # Mutate out of band: every memo record's source signature is
        # now stale, so the next batch re-probes, re-leads and
        # re-records without tripping the identity guard.
        base.provider.mutate_out_of_band(b"fresh bytes" * 16)
        cache.invalidate_document(base.document_id)
        second = cache.read_many(references)
        assert len({o.content for o in first}) == 1
        assert len({o.content for o in second}) == 1
        assert first[0].content != second[0].content
        assert len(cache.memo) >= 1
