"""The scheduler refactor must not move the golden digests.

The default configuration — sequential scheduler, no concurrency
policy, coalescing off — has to reproduce the digests captured from the
pre-refactor monolithic cache bit-for-bit: same stats, same virtual
clock, same fault-injection trace.  This re-asserts the pins from
``tests/property/test_pipeline_equivalence.py`` inside the concurrency
tier, so a scheduler change that perturbs the sequential path fails
here even when only this tier runs, and additionally pins the *wiring*
defaults the equivalence suite takes for granted.
"""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.sim.scheduler import SequentialScheduler
from tests.property.test_pipeline_equivalence import (
    _CONFIGS,
    GOLDEN_DIGESTS,
    digest,
    run_seeded_workload,
)


class TestSchedulerDefaults:
    """The default wiring is the golden-digest-safe regime."""

    def test_default_scheduler_is_sequential(self):
        cache = DocumentCache(PlacelessKernel(), capacity_bytes=1024)
        assert isinstance(cache._core.scheduler, SequentialScheduler)
        assert not cache._core.scheduler.supports_concurrency

    def test_no_concurrency_policy_by_default(self):
        cache = DocumentCache(PlacelessKernel(), capacity_bytes=1024)
        assert cache.concurrency_policy is None
        assert cache.concurrency_stats is None
        assert len(cache._core.flights) == 0


class TestGoldenDigestsUnmoved:
    """Every pinned digest reproduces bit-for-bit post-refactor."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
    def test_pinned_digest_reproduces(self, name):
        snapshot = run_seeded_workload(**_CONFIGS[name])
        assert digest(snapshot) == GOLDEN_DIGESTS[name], (
            f"golden digest {name!r} moved: the scheduler refactor "
            "changed observable sequential behaviour"
        )
