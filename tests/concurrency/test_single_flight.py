"""Single-flight semantics under the asyncio scheduler.

The contract the tentpole promises: N concurrent misses on one hot key
cost exactly one provider fetch and one property-chain execution — the
leader's — and every follower is answered from that result (a
verifier-gated hit on the same key, a memo adoption on the memo-plane
key).  Plus the safety valves: leader-failure promotion, the
coalescing-disabled ablation, breaker-open bail-out and the follower
budget.
"""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.cache.policies import (
    DefaultConcurrencyPolicy,
    DefaultContainmentPolicy,
    DefaultMemoPolicy,
)
from repro.errors import ContentUnavailableError
from repro.events.types import EventType
from repro.placeless.kernel import PlacelessKernel
from repro.placeless.properties import ActiveProperty
from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext

STAMPEDE = 32


class CountingProvider(MemoryProvider):
    """Counts full repository fetches (metadata peeks excluded)."""

    def __init__(self, ctx, content=b""):
        super().__init__(ctx, content)
        self.retrievals = 0

    def fetch(self):
        self.retrievals += 1
        return super().fetch()


class FailingThenHealthyProvider(CountingProvider):
    """Fails the first *failures* fetches, then recovers."""

    def __init__(self, ctx, content=b"", failures=1):
        super().__init__(ctx, content)
        self.failures = failures

    def fetch(self):
        self.retrievals += 1
        if self.retrievals <= self.failures:
            raise ContentUnavailableError("repository hiccup")
        return MemoryProvider.fetch(self)


class RaisingProperty(ActiveProperty):
    """A stream wrapper that explodes until told to behave."""

    execution_cost_ms = 0.1

    def __init__(self, name="bad-prop"):
        super().__init__(name)
        self.misbehave = True

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def wrap_input(self, stream, event):
        if self.misbehave:
            raise RuntimeError("property exploded")
        return stream


def _deployment(provider_cls=CountingProvider, content=b"stampede" * 64,
                n_users=1, **cache_kwargs):
    """Kernel + one document + one reference per user + a cache."""
    ctx = SimContext()
    kernel = PlacelessKernel(ctx)
    owner = kernel.create_user("owner")
    provider = provider_cls(ctx, content)
    base = kernel.create_document(owner, provider, "doc")
    references = []
    for index in range(n_users):
        user = owner if n_users == 1 else kernel.create_user(f"user-{index}")
        references.append(kernel.space(user).add_reference(base))
    cache_kwargs.setdefault("capacity_bytes", 1 << 20)
    cache_kwargs.setdefault("concurrency_policy", DefaultConcurrencyPolicy())
    cache = DocumentCache(kernel, **cache_kwargs)
    return kernel, provider, references, cache


class TestSingleFlight:
    """N concurrent misses → 1 fetch + 1 chain execution + N-1 follows."""

    def test_stampede_coalesces_to_one_fetch(self):
        kernel, provider, (reference,), cache = _deployment()
        outcomes = cache.read_many([reference] * STAMPEDE)
        assert provider.retrievals == 1
        assert kernel.stats.reads == 1  # one property-chain execution
        assert len(outcomes) == STAMPEDE
        assert sum(not o.hit for o in outcomes) == 1  # the leader's miss
        assert sum(o.hit for o in outcomes) == STAMPEDE - 1
        assert len({o.content for o in outcomes}) == 1
        stats = cache.concurrency_stats
        assert stats.flights_led == 1
        assert stats.follows == STAMPEDE - 1
        assert stats.promotions == 0
        assert stats.fetches_saved == STAMPEDE - 1

    def test_memo_plane_coalesces_across_users(self):
        # Different users, different entry keys — but identical source
        # bytes and identical (empty) chains: the memo-plane key shares
        # one chain execution, followers adopt the leader's record.
        kernel, provider, references, cache = _deployment(
            n_users=8, memo_policy=DefaultMemoPolicy()
        )
        outcomes = cache.read_many(references)
        assert provider.retrievals == 1
        assert kernel.stats.reads == 1
        dispositions = sorted(o.disposition for o in outcomes)
        assert dispositions.count("miss") == 1  # the leader
        assert dispositions.count("miss-memoized") == 7
        assert len({o.content for o in outcomes}) == 1
        assert cache.concurrency_stats.follows == 7

    def test_distinct_documents_do_not_coalesce(self):
        ctx = SimContext()
        kernel = PlacelessKernel(ctx)
        owner = kernel.create_user("owner")
        references = []
        providers = []
        for index in range(4):
            provider = CountingProvider(ctx, f"doc {index}".encode() * 16)
            providers.append(provider)
            base = kernel.create_document(owner, provider, f"doc-{index}")
            references.append(kernel.space(owner).add_reference(base))
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            concurrency_policy=DefaultConcurrencyPolicy(),
        )
        outcomes = cache.read_many(references)
        assert [p.retrievals for p in providers] == [1, 1, 1, 1]
        assert all(not o.hit for o in outcomes)
        assert cache.concurrency_stats.follows == 0

    def test_batch_after_fill_is_all_hits(self):
        _, provider, (reference,), cache = _deployment()
        cache.read(reference)
        outcomes = cache.read_many([reference] * 8)
        assert provider.retrievals == 1
        assert all(o.hit for o in outcomes)
        assert cache.concurrency_stats.flights_led == 0


class TestLeaderFailurePromotion:
    """A failed leader's followers promote instead of inheriting the error."""

    def test_first_follower_promotes_and_the_rest_refollow(self):
        kernel, provider, (reference,), cache = _deployment(
            provider_cls=FailingThenHealthyProvider
        )
        outcomes = cache.read_many(
            [reference] * 8, return_exceptions=True
        )
        errors = [o for o in outcomes if isinstance(o, BaseException)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        # The leader's read fails; every follower is answered by the
        # promoted read's fetch — exactly two retrievals in total.
        assert len(errors) == 1
        assert isinstance(errors[0], ContentUnavailableError)
        assert len(served) == 7
        assert provider.retrievals == 2
        assert len({o.content for o in served}) == 1
        stats = cache.concurrency_stats
        assert stats.flights_led == 2  # original leader + promoted follower
        assert stats.promotions >= 1

    def test_all_leaders_failing_fails_every_read(self):
        _, provider, (reference,), cache = _deployment(
            provider_cls=FailingThenHealthyProvider
        )
        provider.failures = 10**9  # never recovers
        outcomes = cache.read_many([reference] * 4, return_exceptions=True)
        assert all(isinstance(o, ContentUnavailableError) for o in outcomes)
        # Each read promoted in turn and failed its own fetch.
        assert provider.retrievals == 4

    def test_failure_without_return_exceptions_raises(self):
        _, provider, (reference,), cache = _deployment(
            provider_cls=FailingThenHealthyProvider
        )
        provider.failures = 10**9
        with pytest.raises(ContentUnavailableError):
            cache.read_many([reference] * 4)


class TestCoalescingDisabled:
    """The ablation: async interleaving without single-flight."""

    def test_disabled_coalescing_stampedes_the_provider(self):
        _, provider, (reference,), cache = _deployment(
            concurrency_policy=DefaultConcurrencyPolicy(coalesce=False)
        )
        outcomes = cache.read_many([reference] * 8)
        # All eight pass the lookup stage before any fill lands: the
        # textbook stampede the single-flight machinery exists to stop.
        assert provider.retrievals == 8
        assert all(not o.hit for o in outcomes)
        assert cache.concurrency_stats.flights_led == 0
        assert cache.concurrency_stats.follows == 0

    def test_disabled_coalescing_serves_the_same_bytes(self):
        _, _, (ref_off,), cache_off = _deployment(
            concurrency_policy=DefaultConcurrencyPolicy(coalesce=False)
        )
        _, _, (ref_on,), cache_on = _deployment()
        off = cache_off.read_many([ref_off] * 8)
        on = cache_on.read_many([ref_on] * 8)
        assert [o.content for o in off] == [o.content for o in on]

    def test_no_policy_read_many_degenerates_to_sequential(self):
        _, provider, (reference,), cache = _deployment(
            concurrency_policy=None
        )
        outcomes = cache.read_many([reference] * 8)
        assert provider.retrievals == 1  # miss then 7 sequential hits
        assert sum(o.hit for o in outcomes) == 7
        assert cache.concurrency_stats is None


class TestBailOuts:
    """Containment and budget caps override coalescing."""

    def test_open_breaker_bails_out_of_coalescing(self):
        ctx = SimContext()
        kernel = PlacelessKernel(ctx)
        owner = kernel.create_user("owner")
        provider = CountingProvider(ctx, b"contained" * 32)
        base = kernel.create_document(owner, provider, "doc")
        prop = RaisingProperty()
        base.attach(prop, acting_user=owner)
        reference = kernel.space(owner).add_reference(base)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            concurrency_policy=DefaultConcurrencyPolicy(),
            containment_policy=DefaultContainmentPolicy(
                failure_threshold=1, probation_delay_ms=1_000_000.0
            ),
        )
        cache.read(reference)  # trips the wrapper breaker
        assert cache.containment.wrappers.open_keys()
        cache.invalidate_document(base.document_id)
        outcomes = cache.read_many([reference] * 4)
        stats = cache.concurrency_stats
        # A quarantined chain's output must not fan out: every read
        # bailed out of the flight table and fetched for itself.
        assert stats.bailed_contained == 4
        assert stats.flights_led == 0
        assert stats.follows == 0
        assert all(not o.hit for o in outcomes)

    def test_max_followers_budget_caps_one_flight(self):
        _, provider, (reference,), cache = _deployment(
            concurrency_policy=DefaultConcurrencyPolicy(max_followers=4)
        )
        outcomes = cache.read_many([reference] * 8)
        stats = cache.concurrency_stats
        # 1 leader + 4 followers; the remaining 3 exceed the budget and
        # fetch for themselves.
        assert stats.flights_led == 1
        assert stats.follows == 4
        assert stats.bailed_capacity == 3
        assert provider.retrievals == 1 + 3
        assert len({o.content for o in outcomes}) == 1
