"""The consistency-mechanism matrix across every repository family.

§3: "Documents originate from any number of repositories, many of which
provide different mechanisms to handle cache consistency."  For each
provider family this suite verifies, end-to-end through the cache:

1. content round-trips;
2. in-band updates (where supported) invalidate via notifiers;
3. out-of-band mutation (where it exists) is caught by the family's
   verifier mechanism on the next hit;
4. the family's cacheability contract holds.
"""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.providers import (
    CompositeProvider,
    DMSProvider,
    DocumentManagementSystem,
    FileSystemProvider,
    LiveFeedProvider,
    MailboxDigestProvider,
    MailServer,
    MemoryProvider,
    MessageProvider,
    SimulatedFileSystem,
    WebOrigin,
    WebProvider,
)


@pytest.fixture
def kernel():
    return PlacelessKernel()


@pytest.fixture
def cached_world(kernel):
    user = kernel.create_user("u")
    cache = DocumentCache(kernel, capacity_bytes=1 << 20)

    def build(provider, hint):
        reference = kernel.import_document(user, provider, hint)
        return reference

    return kernel, user, cache, build


class TestMemoryFamily:
    def test_out_of_band_caught_by_generation_verifier(self, cached_world):
        kernel, user, cache, build = cached_world
        provider = MemoryProvider(kernel.ctx, b"v1")
        reference = build(provider, "mem")
        cache.read(reference)
        provider.mutate_out_of_band(b"v2")
        outcome = cache.read(reference)
        assert not outcome.hit
        assert outcome.content == b"v2"


class TestFileSystemFamily:
    def test_mtime_mechanism(self, cached_world):
        kernel, user, cache, build = cached_world
        fs = SimulatedFileSystem(kernel.ctx.clock)
        fs.write("/f", b"v1")
        reference = build(FileSystemProvider(kernel.ctx, fs, "/f"), "file")
        cache.read(reference)
        assert cache.read(reference).hit
        kernel.ctx.clock.advance(1.0)
        fs.write("/f", b"v2")  # direct write, new mtime
        outcome = cache.read(reference)
        assert not outcome.hit and outcome.content == b"v2"

    def test_same_bytes_new_mtime_still_invalidates(self, cached_world):
        # The mtime verifier is conservative: a touch invalidates even if
        # bytes are unchanged (it cannot know without fetching).
        kernel, user, cache, build = cached_world
        fs = SimulatedFileSystem(kernel.ctx.clock)
        fs.write("/f", b"same")
        reference = build(FileSystemProvider(kernel.ctx, fs, "/f"), "file")
        cache.read(reference)
        kernel.ctx.clock.advance(1.0)
        fs.write("/f", b"same")
        assert not cache.read(reference).hit


class TestWebFamily:
    def test_ttl_mechanism(self, cached_world):
        kernel, user, cache, build = cached_world
        origin = WebOrigin(kernel.ctx.clock, host="www")
        origin.publish("/p", b"page v1", ttl_ms=1000.0)
        reference = build(WebProvider(kernel.ctx, origin, "/p"), "page")
        cache.read(reference)
        origin.author_edit("/p", b"page v2")
        # Within the TTL the stale page is (correctly, per HTTP) served.
        assert cache.read(reference).hit
        kernel.ctx.clock.advance(1001.0)
        outcome = cache.read(reference)
        assert not outcome.hit and outcome.content == b"page v2"


class TestDMSFamily:
    def test_version_mechanism(self, cached_world):
        kernel, user, cache, build = cached_world
        dms = DocumentManagementSystem(kernel.ctx.clock)
        dms.create("spec", b"rev 1")
        reference = build(DMSProvider(kernel.ctx, dms, "spec"), "spec")
        cache.read(reference)
        dms.checkout("spec", "author")
        dms.checkin("spec", "author", b"rev 2")
        outcome = cache.read(reference)
        assert not outcome.hit and outcome.content == b"rev 2"


class TestMailFamily:
    def test_message_immutability_and_digest_staleness(self, cached_world):
        kernel, user, cache, build = cached_world
        mail = MailServer(kernel.ctx.clock)
        mail.deliver("inbox", "a@b", "one", b"first")
        message_ref = build(
            MessageProvider(kernel.ctx, mail, "inbox", 1), "msg"
        )
        digest_ref = build(
            MailboxDigestProvider(kernel.ctx, mail, "inbox"), "digest"
        )
        cache.read(message_ref)
        cache.read(digest_ref)
        mail.deliver("inbox", "c@d", "two", b"second")
        assert cache.read(message_ref).hit        # immutable
        assert not cache.read(digest_ref).hit     # appended


class TestLiveFamily:
    def test_never_cached(self, cached_world):
        kernel, user, cache, build = cached_world
        reference = build(LiveFeedProvider(kernel.ctx), "video")
        contents = {cache.read(reference).content for _ in range(3)}
        assert len(contents) == 3
        assert cache.stats.hits == 0


class TestCompositeFamily:
    def test_any_part_change_invalidates(self, cached_world):
        kernel, user, cache, build = cached_world
        parts = [
            MemoryProvider(kernel.ctx, b"part A"),
            MemoryProvider(kernel.ctx, b"part B"),
        ]
        reference = build(CompositeProvider(kernel.ctx, parts), "composed")
        cache.read(reference)
        assert cache.read(reference).hit
        parts[1].mutate_out_of_band(b"part B changed")
        outcome = cache.read(reference)
        assert not outcome.hit
        assert b"part B changed" in outcome.content


class TestCrossFamilyCorpus:
    def test_mixed_corpus_through_one_cache(self, kernel):
        """Every family coexists in one cache with correct behaviour."""
        user = kernel.create_user("u")
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        fs = SimulatedFileSystem(kernel.ctx.clock)
        fs.write("/f", b"file")
        origin = WebOrigin(kernel.ctx.clock, host="parcweb")
        origin.publish("/p", b"page", ttl_ms=1e9)
        dms = DocumentManagementSystem(kernel.ctx.clock)
        dms.create("d", b"dms")
        mail = MailServer(kernel.ctx.clock)
        mail.deliver("m", "a@b", "s", b"mail")
        providers = [
            MemoryProvider(kernel.ctx, b"memory"),
            FileSystemProvider(kernel.ctx, fs, "/f"),
            WebProvider(kernel.ctx, origin, "/p"),
            DMSProvider(kernel.ctx, dms, "d"),
            MessageProvider(kernel.ctx, mail, "m", 1),
            LiveFeedProvider(kernel.ctx),
        ]
        refs = [
            kernel.import_document(user, provider, f"doc-{i}")
            for i, provider in enumerate(providers)
        ]
        for ref in refs:
            cache.read(ref)
        # Everything except the live feed is cached.
        assert len(cache) == 5
        hits = sum(1 for ref in refs if cache.read(ref).hit)
        assert hits == 5
