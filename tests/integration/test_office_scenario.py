"""An end-to-end "office" scenario exercising most subsystems together.

A research lab: a group space shares project documents on the filer; a
manager reads summaries; the team's mail thread is a prefetched
collection; an access-controlled budget file rejects outsiders; all
reads flow through a two-level cache hierarchy with the adoption
optimization at the shared server cache.
"""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.cache.notifiers import InvalidationBus
from repro.errors import PermissionDeniedError
from repro.nfs.server import NFSServer
from repro.placeless.collection import DocumentCollection
from repro.placeless.kernel import PlacelessKernel
from repro.properties.access import AccessControlProperty
from repro.properties.collection import attach_collection_prefetch
from repro.properties.summarize import SummaryProperty
from repro.properties.versioning import VersioningProperty
from repro.providers.filesystem import FileSystemProvider
from repro.providers.mail import MailServer, MessageProvider
from repro.providers.simfs import SimulatedFileSystem
from repro.sim.topology import CachePlacement


@pytest.fixture
def office():
    kernel = PlacelessKernel()
    karin = kernel.create_user("karin")
    doug = kernel.create_user("doug")
    manager = kernel.create_user("manager")
    team = kernel.create_group("csl-team", [karin, doug])

    filer = SimulatedFileSystem(kernel.ctx.clock)
    filer.write("/projects/placeless/design.txt",
                b"Design. Placeless stores documents by property. "
                b"More detail follows. And follows.")
    filer.write("/projects/placeless/budget.txt", b"budget: 100000 USD")

    design = kernel.create_document(
        team,
        FileSystemProvider(kernel.ctx, filer,
                           "/projects/placeless/design.txt"),
        "design",
    )
    design.attach(VersioningProperty())
    budget = kernel.create_document(
        karin,
        FileSystemProvider(kernel.ctx, filer,
                           "/projects/placeless/budget.txt"),
        "budget",
    )
    budget.attach(AccessControlProperty(allowed={karin, manager}))

    team_design_ref = kernel.space(team).add_reference(design, "design")
    manager_design_ref = kernel.space(manager).add_reference(design, "design")
    manager_design_ref.attach(SummaryProperty(max_sentences=1))
    karin_budget_ref = kernel.space(karin).add_reference(budget, "budget")
    doug_budget_ref = kernel.space(doug).add_reference(budget, "budget")

    bus = InvalidationBus(kernel.ctx)
    server_cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, bus=bus,
        placement=CachePlacement.SERVER_COLOCATED,
        share_across_users=True, name="office-l2",
    )
    app_cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, bus=bus,
        backing=server_cache, name="office-l1",
    )
    return {
        "kernel": kernel,
        "filer": filer,
        "team": team,
        "refs": {
            "team_design": team_design_ref,
            "manager_design": manager_design_ref,
            "karin_budget": karin_budget_ref,
            "doug_budget": doug_budget_ref,
        },
        "caches": (app_cache, server_cache),
        "users": {"karin": karin, "doug": doug, "manager": manager},
    }


class TestGroupSharing:
    def test_group_members_share_one_cached_version(self, office):
        app_cache, _ = office["caches"]
        team_ref = office["refs"]["team_design"]
        app_cache.read(team_ref)
        # Any member acting through the group reference hits the same
        # entry: the key is the group principal.
        assert app_cache.read(team_ref).hit
        assert len([e for e in app_cache.entries()
                    if e.user_id == office["team"]]) == 1

    def test_manager_summary_differs_from_team_view(self, office):
        kernel = office["kernel"]
        team_view = kernel.read(office["refs"]["team_design"]).content
        manager_view = kernel.read(office["refs"]["manager_design"]).content
        assert len(manager_view) < len(team_view)
        assert manager_view.startswith(b"Design.")


class TestAccessControl:
    def test_doug_cannot_read_budget(self, office):
        app_cache, _ = office["caches"]
        with pytest.raises(PermissionDeniedError):
            app_cache.read(office["refs"]["doug_budget"])

    def test_karin_reads_budget_fine(self, office):
        app_cache, _ = office["caches"]
        outcome = app_cache.read(office["refs"]["karin_budget"])
        assert b"100000" in outcome.content


class TestHierarchyAndVersioning:
    def test_edit_through_nfs_versions_and_invalidates(self, office):
        kernel = office["kernel"]
        app_cache, server_cache = office["caches"]
        team_ref = office["refs"]["team_design"]
        manager_ref = office["refs"]["manager_design"]
        app_cache.read(team_ref)
        app_cache.read(manager_ref)

        # Karin edits through MS-Word/NFS using the team reference.
        nfs = NFSServer(kernel)
        mount = nfs.mount(office["team"])
        mount.bind("/design.txt", team_ref)
        mount.write_file("/design.txt", b"Design v2. Rewritten entirely.")

        # The universal versioning property archived the old content.
        versioning = team_ref.base.find_property("versioning")
        assert versioning.version_count == 1
        # Both cached views (team + manager) were invalidated.
        team_view = app_cache.read(team_ref)
        manager_view = app_cache.read(manager_ref)
        assert not team_view.hit or b"v2" in team_view.content
        assert b"Design v2." in team_view.content
        assert manager_view.content == b"Design v2."  # summary of v2

    def test_out_of_band_filer_change_caught(self, office):
        kernel = office["kernel"]
        app_cache, _ = office["caches"]
        team_ref = office["refs"]["team_design"]
        app_cache.read(team_ref)
        kernel.ctx.clock.advance(5.0)
        office["filer"].write(
            "/projects/placeless/design.txt", b"Changed on the filer."
        )
        outcome = app_cache.read(team_ref)
        assert not outcome.hit
        assert outcome.content == b"Changed on the filer."


class TestMailThread:
    def test_thread_prefetch(self, office):
        kernel = office["kernel"]
        app_cache, _ = office["caches"]
        karin = office["users"]["karin"]
        mail = MailServer(kernel.ctx.clock)
        for n in range(3):
            mail.deliver("karin", "doug@parc", f"msg {n}", b"body")
        refs = [
            kernel.import_document(
                karin, MessageProvider(kernel.ctx, mail, "karin", uid),
                f"m{uid}",
            )
            for uid in (1, 2, 3)
        ]
        thread = DocumentCollection("thread", karin)
        for ref in refs:
            thread.add(ref)
        attach_collection_prefetch(thread, app_cache)
        app_cache.read(refs[0])
        assert app_cache.read(refs[1]).hit
        assert app_cache.read(refs[2]).hit
