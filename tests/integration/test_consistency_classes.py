"""A5 end-to-end: every consistency class hits exactly the right entries."""

from __future__ import annotations

import pytest

from repro.bench.invalidation import run_invalidation_classes


@pytest.fixture(scope="module")
def steps():
    return {s.consistency_class: s for s in run_invalidation_classes()}


class TestScopes:
    def test_in_band_write_invalidates_everyone(self, steps):
        step = steps["1 (in-band)"]
        assert step.invalidated_users == ("doug", "eyal", "paul")
        assert step.survived_users == ()

    def test_out_of_band_update_invalidates_everyone(self, steps):
        step = steps["1 (out-of-band)"]
        assert step.invalidated_users == ("doug", "eyal", "paul")
        assert "source-updated-out-of-band" in step.reasons

    def test_personal_property_add_scopes_to_owner(self, steps):
        step = steps["2 (personal add)"]
        assert step.invalidated_users == ("paul",)
        assert step.survived_users == ("doug", "eyal")
        assert "property-added" in step.reasons

    def test_property_modify_scopes_to_owner(self, steps):
        step = steps["2 (modify)"]
        assert step.invalidated_users == ("eyal",)
        assert "property-modified" in step.reasons

    def test_universal_property_add_hits_everyone(self, steps):
        step = steps["2 (universal add)"]
        assert step.invalidated_users == ("doug", "eyal", "paul")

    def test_reorder_scopes_to_owner(self, steps):
        step = steps["3 (reorder)"]
        assert step.invalidated_users == ("eyal",)
        assert step.survived_users == ("doug", "paul")
        assert "property-reordered" in step.reasons

    def test_external_change_caught_by_verifier(self, steps):
        step = steps["4 (external)"]
        assert step.invalidated_users == ("doug", "eyal", "paul")
        assert "source-updated-out-of-band" in step.reasons


class TestReasonsAttribution:
    def test_every_step_recorded_at_least_one_reason(self, steps):
        for step in steps.values():
            assert step.reasons, f"no reasons for step {step.step!r}"
