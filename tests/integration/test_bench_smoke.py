"""Smoke tests: every bench runs (at reduced scale) and its shape holds.

These are the assertions behind EXPERIMENTS.md — each experiment's
qualitative claim is checked mechanically, so a regression that flips a
conclusion fails the suite, not just the benchmark report.
"""

from __future__ import annotations

import pytest

from repro.bench.cacheability import run_cacheability
from repro.bench.chains import run_chain_latency
from repro.bench.containment import run_availability, run_recovery
from repro.bench.collections import run_collections
from repro.bench.external import run_external_placement
from repro.bench.memo import run_memo
from repro.bench.notifier_verifier import run_notifier_verifier
from repro.bench.placement import run_placement
from repro.bench.qos import run_qos
from repro.bench.replacement import run_replacement
from repro.bench.sharing import run_sharing
from repro.bench.table1 import format_table1, run_table1


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(repeats=3)

    def test_three_documents_with_paper_sizes(self, rows):
        assert [r.size_bytes for r in rows] == [1915, 10_883, 1104]

    def test_hit_is_orders_of_magnitude_faster(self, rows):
        for row in rows:
            assert row.hit_speedup > 50

    def test_miss_overhead_is_small(self, rows):
        # "the overhead to create a minimum set of notifiers ... and the
        # returning of one TTL-based verifier is small" — under 5%.
        for row in rows:
            assert 0 <= row.miss_overhead_fraction < 0.05

    def test_www_documents_slower_than_parcweb(self, rows):
        parcweb = rows[0]
        for www_row in rows[1:]:
            assert www_row.no_cache_ms > parcweb.no_cache_ms

    def test_formatting_matches_paper_layout(self, rows):
        text = format_table1(rows)
        assert "parcweb (1915 bytes)" in text
        assert "www (10883 bytes)" in text
        assert "no cache" in text and "cache miss" in text


class TestA1NotifierVerifier:
    @pytest.fixture(scope="class")
    def rows(self):
        results = run_notifier_verifier(n_documents=20, n_events=500)
        return {r.config: r for r in results}

    def test_both_is_least_stale(self, rows):
        assert rows["both"].staleness_ratio <= rows["notifiers-only"].staleness_ratio
        assert rows["both"].staleness_ratio <= rows["verifiers-only"].staleness_ratio
        assert rows["both"].staleness_ratio < rows["none"].staleness_ratio

    def test_verifiers_cost_hit_latency(self, rows):
        assert (
            rows["verifiers-only"].mean_hit_latency_ms
            > rows["notifiers-only"].mean_hit_latency_ms
        )

    def test_notifiers_cost_system_load(self, rows):
        assert rows["notifiers-only"].notifier_deliveries > 0
        assert rows["verifiers-only"].notifier_deliveries == 0

    def test_none_is_most_stale(self, rows):
        assert rows["none"].staleness_ratio >= rows["notifiers-only"].staleness_ratio


class TestA2Replacement:
    @pytest.fixture(scope="class")
    def rows(self):
        results = run_replacement(
            policies=("gds", "gdsf", "lru", "fifo", "random"),
            n_documents=60,
            n_reads=800,
        )
        return {r.policy: r for r in results}

    def test_cost_aware_beats_recency_on_latency(self, rows):
        best_gds = min(rows["gds"].total_latency_ms, rows["gdsf"].total_latency_ms)
        assert best_gds < rows["lru"].total_latency_ms
        assert best_gds < rows["fifo"].total_latency_ms
        assert best_gds < rows["random"].total_latency_ms

    def test_all_policies_get_some_hits(self, rows):
        assert all(r.hit_ratio > 0.05 for r in rows.values())


class TestA3Sharing:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_sharing(fractions=(0.0, 0.5, 1.0), n_documents=8, n_users=8)

    def test_zero_personalization_shares_fully(self, rows):
        assert rows[0].dedup_factor == pytest.approx(8.0)
        assert rows[0].distinct_contents == 8

    def test_dedup_decreases_with_personalization(self, rows):
        assert rows[0].dedup_factor > rows[1].dedup_factor

    def test_sharing_never_below_one(self, rows):
        assert all(r.dedup_factor >= 1.0 for r in rows)

    def test_entry_count_constant(self, rows):
        assert all(r.n_entries == 64 for r in rows)


class TestA4Cacheability:
    @pytest.fixture(scope="class")
    def rows(self):
        results = run_cacheability(n_documents=10, n_reads=300)
        return {r.config: r for r in results}

    def test_with_events_audit_complete(self, rows):
        assert rows["with-events"].audit_complete
        assert rows["uncacheable"].audit_complete

    def test_with_events_much_faster_than_uncacheable(self, rows):
        assert (
            rows["with-events"].mean_latency_ms
            < rows["uncacheable"].mean_latency_ms / 3
        )

    def test_uncacheable_never_hits(self, rows):
        assert rows["uncacheable"].hit_ratio == 0.0

    def test_forwarding_only_in_with_events(self, rows):
        assert rows["with-events"].forwarded_reads > 0
        assert rows["unrestricted"].forwarded_reads == 0


class TestA6QoS:
    @pytest.fixture(scope="class")
    def rows(self):
        results = run_qos(n_documents=60, n_qos=6, n_reads=1200)
        return {r.config: r for r in results}

    def test_inflation_improves_compliance(self, rows):
        assert (
            rows["inflated"].qos_compliance
            > rows["no-inflation"].qos_compliance
        )

    def test_inflation_lowers_qos_latency(self, rows):
        assert (
            rows["inflated"].qos_mean_latency_ms
            < rows["no-inflation"].qos_mean_latency_ms
        )


class TestA7Chains:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_chain_latency(lengths=(0, 2, 4), repeats=3)

    def test_uncached_latency_grows_with_chain(self, rows):
        latencies = [r.uncached_ms for r in rows]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]

    def test_hit_latency_stays_flat(self, rows):
        hits = [r.hit_ms for r in rows]
        assert max(hits) - min(hits) < 0.1

    def test_replacement_cost_grows_with_chain(self, rows):
        costs = [r.replacement_cost_ms for r in rows]
        assert costs == sorted(costs)


class TestA8Placement:
    @pytest.fixture(scope="class")
    def rows(self):
        results = run_placement(n_documents=25, n_users=4, n_events=800)
        return {r.deployment: r for r in results}

    def test_app_level_hits_are_cheapest_per_hit(self, rows):
        assert (
            rows["app-level"].mean_latency_ms < rows["server"].mean_latency_ms
        )

    def test_shared_server_cache_saves_memory(self, rows):
        assert rows["server"].bytes_cached < rows["app-level"].bytes_cached

    def test_adoption_collapses_kernel_reads(self, rows):
        assert (
            rows["server+adoption"].kernel_reads < rows["server"].kernel_reads
        )

    def test_hierarchy_with_adoption_wins(self, rows):
        best = min(rows.values(), key=lambda r: r.mean_latency_ms)
        assert best.deployment == "both+adoption"


class TestA9Collections:
    @pytest.fixture(scope="class")
    def rows(self):
        results = run_collections(
            n_collections=8, collection_size=5, n_bursts=60
        )
        return {r.config: r for r in results}

    def test_prefetch_accelerates_follow_reads(self, rows):
        assert (
            rows["prefetch"].mean_follow_latency_ms
            < rows["no-prefetch"].mean_follow_latency_ms / 2
        )

    def test_prefetch_costs_speculative_fills(self, rows):
        assert rows["prefetch"].prefetch_fills > 0
        assert rows["no-prefetch"].prefetch_fills == 0


class TestA10ExternalPlacement:
    @pytest.fixture(scope="class")
    def rows(self):
        results = run_external_placement(n_reads=300)
        return {r.placement: r for r in results}

    def test_verifier_placement_never_stale(self, rows):
        assert rows["verifier"].stale_ratio == 0.0

    def test_verifier_placement_pays_hit_latency(self, rows):
        assert (
            rows["verifier"].mean_hit_latency_ms
            > rows["notifier-fast"].mean_hit_latency_ms * 2
        )

    def test_polling_period_controls_staleness_and_load(self, rows):
        fast, slow = rows["notifier-fast"], rows["notifier-slow"]
        assert fast.stale_ratio < slow.stale_ratio
        assert fast.samples_taken > slow.samples_taken


class TestA14Containment:
    @pytest.fixture(scope="class")
    def cells(self):
        results = {}
        for rate in (0.0, 0.10):
            for contained in (False, True):
                results[(rate, contained)] = run_availability(
                    rate, contained, rounds=12, n_documents=6
                )
        return results

    def test_fault_free_runs_are_identical_either_way(self, cells):
        bare, contained = cells[(0.0, False)], cells[(0.0, True)]
        assert bare.failures == contained.failures == 0
        assert bare.availability == contained.availability == 1.0
        assert contained.trips == 0

    def test_containment_keeps_availability_near_baseline(self, cells):
        baseline = cells[(0.0, False)].availability
        contained = cells[(0.10, True)].availability
        uncontained = cells[(0.10, False)].availability
        assert baseline - contained <= 0.05
        assert baseline - uncontained > 0.05

    def test_containment_collapses_the_latency_tail(self, cells):
        assert (
            cells[(0.10, True)].p99_latency_ms
            < cells[(0.10, False)].p99_latency_ms
        )

    def test_containment_machinery_actually_engaged(self, cells):
        r = cells[(0.10, True)]
        assert r.trips > 0
        assert r.contained_raises + r.budget_overruns + r.escapes > 0

    def test_breakers_close_within_one_probation_window(self):
        r = run_recovery(rounds=12, n_documents=6)
        assert r.open_after_faults > 0
        assert r.open_after_recovery == 0
        assert r.closes == r.open_after_faults
        assert r.recovered_degraded_reads == 0
        assert r.recovered_failures == 0


class TestMemoization:
    """A15: chain executions avoided once users share a chain."""

    @pytest.fixture(scope="class")
    def cells(self):
        return {
            memo: run_memo(8, memo, n_documents=4)
            for memo in (False, True)
        }

    def test_memo_off_executes_every_chain(self, cells):
        baseline = cells[False]
        assert baseline.chain_executions == baseline.reads
        assert baseline.chain_executions_avoided == 0

    def test_memo_on_executes_once_per_distinct_pair(self, cells):
        memoized = cells[True]
        assert memoized.chain_executions == memoized.n_documents
        assert memoized.avoided_pct == pytest.approx(1 - 1 / 8)
        assert memoized.memo_adoptions == memoized.chain_executions_avoided

    def test_memoized_misses_are_cheaper(self, cells):
        assert cells[True].mean_ms < cells[False].mean_ms
        assert cells[True].p50_ms < cells[False].p50_ms
