"""Multi-user end-to-end caching: personalization, sharing, invalidation."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population


@pytest.fixture
def world():
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner, CorpusSpec(n_documents=6, ttl_ms=3_600_000.0, seed=9)
    )
    population = build_population(
        kernel, corpus, n_users=6, personalized_fraction=0.5, seed=9
    )
    cache = DocumentCache(kernel, capacity_bytes=1 << 30)
    return kernel, corpus, population, cache


class TestSharing:
    def test_plain_users_share_content(self, world):
        kernel, corpus, population, cache = world
        plain_users = [
            index for index, chain in enumerate(population.chains)
            if chain == "plain"
        ]
        assert len(plain_users) >= 2
        for user_index in plain_users:
            cache.read(population.reference(user_index, 0))
        # All plain users' entries point at the same stored content.
        assert len(cache) == len(plain_users)
        assert len(cache.store) == 1

    def test_identical_chains_share_content(self, world):
        kernel, corpus, population, cache = world
        # Two fresh users with the same chain read the same doc.
        extra_a = kernel.create_user("twin-a")
        extra_b = kernel.create_user("twin-b")
        ref_a = kernel.space(extra_a).add_reference(corpus[1].reference.base)
        ref_b = kernel.space(extra_b).add_reference(corpus[1].reference.base)
        ref_a.attach(TranslationProperty())
        ref_b.attach(TranslationProperty())
        cache.read(ref_a)
        cache.read(ref_b)
        entry_a = cache.entry_for(ref_a)
        entry_b = cache.entry_for(ref_b)
        assert entry_a.signature == entry_b.signature
        assert entry_a.chain_signature == entry_b.chain_signature

    def test_different_chains_get_different_bytes(self, world):
        kernel, corpus, population, cache = world
        personalized = [
            index for index, chain in enumerate(population.chains)
            if chain == "translate"
        ]
        plain = [
            index for index, chain in enumerate(population.chains)
            if chain == "plain"
        ]
        if not personalized or not plain:
            pytest.skip("population draw lacks one of the groups")
        a = cache.read(population.reference(personalized[0], 2)).content
        b = cache.read(population.reference(plain[0], 2)).content
        assert a != b


class TestCrossUserConsistency:
    def test_one_users_write_invalidates_all_cached_readers(self, world):
        kernel, corpus, population, cache = world
        for user_index in range(4):
            cache.read(population.reference(user_index, 3))
        assert (
            sum(1 for e in cache.entries()
                if e.document_id == corpus[3].reference.base.document_id)
            == 4
        )
        cache.write(population.reference(4, 3), b"user four rewrites")
        for user_index in range(4):
            outcome = cache.read(population.reference(user_index, 3))
            assert not outcome.hit

    def test_unrelated_documents_untouched_by_write(self, world):
        kernel, corpus, population, cache = world
        cache.read(population.reference(0, 0))
        cache.read(population.reference(0, 1))
        cache.write(population.reference(1, 0), b"rewrite doc zero")
        assert cache.read(population.reference(0, 1)).hit

    def test_hit_content_matches_fresh_kernel_read(self, world):
        kernel, corpus, population, cache = world
        for user_index in range(3):
            for document_index in range(3):
                reference = population.reference(user_index, document_index)
                cached = cache.read(reference)
                again = cache.read(reference)
                fresh = kernel.read(reference).content
                assert again.content == fresh
                assert cached.content == fresh
