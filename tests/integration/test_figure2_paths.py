"""Figure 2: the read/write path through the active-property mechanism.

The MS-Word save flow, exactly as §2 narrates it: "When Word issues the
save/write request, it results in a getoutputstream call on Eyal's
reference ... forwarded from the reference to the base document, which in
turn invokes the call on the bit-provider ... At the base document all
attached active properties interested in the getoutputstream operation
get dispatched ... the reference dispatches all its active properties
interested in the getoutputstream operation, which in this case means
that it invokes the spelling corrector."

Here the application is off-the-shelf, so operations arrive through the
NFS translation layer (footnote 2).
"""

from __future__ import annotations

import pytest

from repro.events.types import EventType
from repro.nfs.server import NFSServer
from repro.placeless.kernel import PlacelessKernel
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.versioning import VersioningProperty
from repro.providers.filesystem import FileSystemProvider
from repro.providers.simfs import SimulatedFileSystem


@pytest.fixture
def figure2():
    kernel = PlacelessKernel()
    eyal = kernel.create_user("eyal")
    fs = SimulatedFileSystem(kernel.ctx.clock)
    fs.write("/tilde/edelara/hotos.doc", b"Original draft with a documnet typo.")
    base = kernel.create_document(
        eyal, FileSystemProvider(kernel.ctx, fs, "/tilde/edelara/hotos.doc"),
        "hotos.doc",
    )
    versioning = VersioningProperty()
    base.attach(versioning)
    reference = kernel.space(eyal).add_reference(base, "hotos.doc")
    spell = SpellingCorrectorProperty()
    reference.attach(spell)
    server = NFSServer(kernel)
    mount = server.mount(eyal)
    mount.bind("/hotos.doc", reference)
    return kernel, fs, base, reference, versioning, spell, mount


class TestWritePath:
    def test_msword_save_flow(self, figure2):
        kernel, fs, base, reference, versioning, spell, mount = figure2
        # MS-Word opens for write and saves.
        fh = mount.open("/hotos.doc", "w")
        mount.write(fh, b"New teh draft.")
        mount.close(fh)
        # 1. The versioning property (base, getoutputstream) snapshotted
        #    the old content before the overwrite.
        assert versioning.version_count == 1
        assert b"Original draft" in versioning.snapshots[0].content
        # 2. The spelling corrector's custom output-stream transformed the
        #    written bytes before they reached the bit-provider.
        assert fs.read("/tilde/edelara/hotos.doc") == b"New the draft."

    def test_write_dispatch_base_before_reference(self, figure2):
        kernel, fs, base, reference, versioning, spell, mount = figure2
        order = []
        base.dispatcher.register(
            kernel.ctx.ids.property("probe-base"),
            EventType.GET_OUTPUT_STREAM,
            lambda e: order.append("base"),
        )
        reference.dispatcher.register(
            kernel.ctx.ids.property("probe-ref"),
            EventType.GET_OUTPUT_STREAM,
            lambda e: order.append("reference"),
        )
        mount.write_file("/hotos.doc", b"x")
        assert order == ["base", "reference"]


class TestReadPath:
    def test_read_through_nfs_applies_chain(self, figure2):
        kernel, fs, base, reference, versioning, spell, mount = figure2
        content = mount.read_file("/hotos.doc")
        # The spelling corrector is also on getinputstream (§2).
        assert b"document" in content
        assert b"documnet" not in content

    def test_read_dispatch_base_before_reference(self, figure2):
        kernel, fs, base, reference, versioning, spell, mount = figure2
        order = []
        base.dispatcher.register(
            kernel.ctx.ids.property("probe-base"),
            EventType.GET_INPUT_STREAM,
            lambda e: order.append("base"),
        )
        reference.dispatcher.register(
            kernel.ctx.ids.property("probe-ref"),
            EventType.GET_INPUT_STREAM,
            lambda e: order.append("reference"),
        )
        mount.read_file("/hotos.doc")
        assert order == ["base", "reference"]

    def test_spell_corrector_dispatched_on_both_operations(self, figure2):
        kernel, fs, base, reference, versioning, spell, mount = figure2
        before = spell.dispatch_count
        mount.read_file("/hotos.doc")
        mount.write_file("/hotos.doc", b"y")
        assert spell.dispatch_count == before + 2

    def test_versioning_not_dispatched_on_read(self, figure2):
        kernel, fs, base, reference, versioning, spell, mount = figure2
        mount.read_file("/hotos.doc")
        assert versioning.version_count == 0
