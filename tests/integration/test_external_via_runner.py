"""Closing the class-4 loop: trace-driven external changes end-to-end.

The trace runner's EXTERNAL_CHANGE events mutate its per-document
external registry; documents carrying an
:class:`~repro.properties.external.ExternalDependencyProperty` sampling
that registry then go stale exactly when the trace says so, and the
chosen placement (verifier here) catches it — the full §3 class-4 path
driven by generated workload rather than a scripted scenario.
"""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.properties.external import ExternalDependencyProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.runner import TraceRunner
from repro.workload.trace import TraceEvent, TraceEventKind


@pytest.fixture
def world():
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner, CorpusSpec(n_documents=3, ttl_ms=3.6e6, seed=5)
    )
    cache = DocumentCache(kernel, capacity_bytes=1 << 20)
    runner = TraceRunner(
        kernel, corpus, [[d.reference for d in corpus]], caches=cache
    )
    # Document 0 renders according to the runner's external registry.
    corpus[0].reference.attach(
        ExternalDependencyProperty(
            lambda: runner.external_value(0), mode="verifier"
        )
    )
    return kernel, corpus, cache, runner


def ev(kind, doc=0):
    return TraceEvent(kind=kind, document_index=doc, user_index=0)


class TestExternalChangesViaTrace:
    def test_external_change_invalidates_dependent_document(self, world):
        kernel, corpus, cache, runner = world
        runner.execute([ev(TraceEventKind.READ), ev(TraceEventKind.READ)])
        assert cache.stats.hits == 1
        report = runner.execute([
            ev(TraceEventKind.EXTERNAL_CHANGE),
            ev(TraceEventKind.READ),
        ])
        assert report.external_changes == 1
        # The post-change read missed (verifier caught the drift) and the
        # fresh content carries the new external value.
        assert report.hits == 0
        outcome = cache.read(corpus[0].reference)
        assert b"[external=1]" in outcome.content

    def test_unrelated_documents_untouched(self, world):
        kernel, corpus, cache, runner = world
        runner.execute([
            ev(TraceEventKind.READ, doc=1),
            ev(TraceEventKind.EXTERNAL_CHANGE, doc=0),
        ])
        assert cache.read(corpus[1].reference).hit

    def test_repeated_changes_keep_tracking(self, world):
        kernel, corpus, cache, runner = world
        for round_number in range(1, 4):
            runner.execute([
                ev(TraceEventKind.EXTERNAL_CHANGE),
                ev(TraceEventKind.READ),
            ])
            outcome = cache.read(corpus[0].reference)
            assert f"[external={round_number}]".encode() in outcome.content
