"""Figure 1: the HotOS-paper-draft property-attachment structure, verbatim.

"Eyal owns the base document since he created the draft of the HotOS
paper.  A special active property on the base document, called the
bit-provider, is responsible for retrieving the actual content ...  Eyal
also attached an universal property to the base that saves an old version
of the paper each time someone opens it for writing.  Eyal, Paul and Doug
personalize their interactions with the paper through personal properties
attached in their references."
"""

from __future__ import annotations

import pytest

from repro.placeless.kernel import PlacelessKernel
from repro.placeless.properties import AttachmentSite, StaticProperty
from repro.properties.replication import ReplicationProperty
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.versioning import VersioningProperty
from repro.providers.filesystem import FileSystemProvider
from repro.providers.simfs import SimulatedFileSystem


@pytest.fixture
def scenario():
    kernel = PlacelessKernel()
    eyal = kernel.create_user("eyal")
    paul = kernel.create_user("paul")
    doug = kernel.create_user("doug")

    parc_fs = SimulatedFileSystem(kernel.ctx.clock)
    parc_fs.write(
        "/tilde/edelara/hotos.doc",
        b"Caching documnet with active propertys.\nDraft one.",
    )
    provider = FileSystemProvider(kernel.ctx, parc_fs, "/tilde/edelara/hotos.doc")
    base = kernel.create_document(eyal, provider, "hotos.doc")

    versioning = VersioningProperty()
    base.attach(versioning)

    eyal_ref = kernel.space(eyal).add_reference(base, "hotos.doc")
    paul_ref = kernel.space(paul).add_reference(base, "hotos.doc")
    doug_ref = kernel.space(doug).add_reference(base, "hotos.doc")

    rice_fs = SimulatedFileSystem(kernel.ctx.clock)
    spell = SpellingCorrectorProperty()
    replicate = ReplicationProperty(
        kernel.timers, rice_fs, "/home/edelara/hotos.doc"
    )
    eyal_ref.attach(spell)
    eyal_ref.attach(replicate)
    paul_ref.attach(StaticProperty("1999 workshop submission"))
    doug_ref.attach(StaticProperty("read by", "11/30"))

    return {
        "kernel": kernel,
        "base": base,
        "parc_fs": parc_fs,
        "rice_fs": rice_fs,
        "refs": {"eyal": eyal_ref, "paul": paul_ref, "doug": doug_ref},
        "versioning": versioning,
        "spell": spell,
        "replicate": replicate,
    }


class TestStructure:
    def test_eyal_owns_the_base(self, scenario):
        assert scenario["base"].owner == scenario["refs"]["eyal"].owner

    def test_universal_property_on_base(self, scenario):
        assert scenario["base"].has_property("versioning")
        assert scenario["versioning"].site is AttachmentSite.BASE

    def test_three_references_share_the_base(self, scenario):
        base = scenario["base"]
        assert len(base.references) == 3
        assert all(ref.base is base for ref in scenario["refs"].values())

    def test_personal_properties_are_private(self, scenario):
        refs = scenario["refs"]
        assert refs["eyal"].has_property("spell-correct")
        assert not refs["paul"].has_property("spell-correct")
        assert refs["paul"].has_property("1999 workshop submission")
        assert refs["doug"].has_property("read by")
        assert not scenario["base"].has_property("read by")


class TestBehaviour:
    def test_all_users_see_the_shared_content(self, scenario):
        kernel = scenario["kernel"]
        refs = scenario["refs"]
        paul_view = kernel.read(refs["paul"]).content
        doug_view = kernel.read(refs["doug"]).content
        assert paul_view == doug_view
        assert b"documnet" in paul_view  # uncorrected for them

    def test_eyal_sees_corrected_spelling(self, scenario):
        kernel = scenario["kernel"]
        eyal_view = kernel.read(scenario["refs"]["eyal"]).content
        assert b"document" in eyal_view
        assert b"documnet" not in eyal_view

    def test_everyone_sees_versioning_results(self, scenario):
        # "All three users see the versioning information resulting from
        # the universal property on the base document."
        kernel = scenario["kernel"]
        refs = scenario["refs"]
        kernel.write(refs["doug"], b"Doug revises the draft.")
        base = scenario["base"]
        assert base.has_property("version-1")
        assert scenario["versioning"].version_count == 1
        # The link is visible from every reference (it is on the base).
        for ref in refs.values():
            assert ref.base.has_property("version-1")

    def test_versioning_snapshots_old_content_on_each_write(self, scenario):
        kernel = scenario["kernel"]
        refs = scenario["refs"]
        kernel.write(refs["eyal"], b"Draft two.")
        kernel.write(refs["doug"], b"Draft three.")
        versioning = scenario["versioning"]
        assert versioning.version_count == 2
        assert b"Draft one." in versioning.snapshots[0].content
        # Eyal's write went through his spell-corrector before storage.
        assert versioning.snapshots[1].content == b"Draft two."

    def test_replication_keeps_copy_at_rice(self, scenario):
        # "Eyal's replication between PARC and Rice occurs only once at
        # the end of the day" — a timer event.
        kernel = scenario["kernel"]
        day_ms = 24 * 60 * 60 * 1000.0
        kernel.ctx.clock.advance(day_ms + 1)
        assert (
            scenario["rice_fs"].read("/home/edelara/hotos.doc")
            == scenario["parc_fs"].read("/tilde/edelara/hotos.doc")
        )

    def test_eyals_write_is_spell_corrected_at_source(self, scenario):
        kernel = scenario["kernel"]
        kernel.write(scenario["refs"]["eyal"], b"teh final version")
        assert (
            scenario["parc_fs"].read("/tilde/edelara/hotos.doc")
            == b"the final version"
        )
