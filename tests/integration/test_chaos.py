"""Chaos test: everything at once, invariants must survive.

A long mixed trace (reads, in-band writes, out-of-band mutations,
property churn, reorders) runs against a deployment that also has
timer-driven replication, versioning, audit trails and a tight cache.
After every burst the suite asserts the global invariants: cache
transparency (cached reads equal fresh reads), capacity, store refcount
bookkeeping, audit completeness, and replica convergence.
"""

from __future__ import annotations

import os

import pytest

from repro.cache.manager import DocumentCache
from repro.cache.stats import CacheStats
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.retry import RetryPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.properties.audit import ReadAuditTrailProperty
from repro.properties.replication import ReplicationProperty
from repro.properties.versioning import VersioningProperty
from repro.providers.simfs import SimulatedFileSystem
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.runner import TraceRunner
from repro.workload.trace import TraceSpec, generate_trace
from repro.workload.users import build_population

#: CI runs this tier across several seeds; locally it defaults to the
#: historical seed 77 so golden expectations stay easy to reproduce.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "77"))


@pytest.fixture(scope="module")
def chaos_run():
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=10, ttl_ms=60_000.0, seed=CHAOS_SEED),
    )
    population = build_population(
        kernel, corpus, n_users=3, personalized_fraction=0.4,
        seed=CHAOS_SEED,
    )
    # Extra machinery on some documents.
    replica_fs = SimulatedFileSystem(kernel.ctx.clock)
    versioning = VersioningProperty()
    corpus[0].reference.base.attach(versioning)
    replication = ReplicationProperty(
        kernel.timers, replica_fs, "/replica/doc0", period_ms=2_000.0
    )
    population.reference(0, 0).attach(replication)
    audit = ReadAuditTrailProperty()
    population.reference(1, 1).attach(audit)

    cache = DocumentCache(
        kernel,
        capacity_bytes=max(
            2048, sum(d.size_bytes for d in corpus) // 4
        ),
        track_staleness=True,
        name="chaos",
    )
    runner = TraceRunner(
        kernel, corpus, population.references, caches=cache,
        writes_via_cache=False,
    )
    spec = TraceSpec(
        n_events=1200, n_documents=10, n_users=3,
        p_write=0.06, p_out_of_band=0.06,
        p_property_change=0.04, p_property_reorder=0.02,
        p_external_change=0.02,
        mean_think_time_ms=120.0,
        seed=CHAOS_SEED,
    )
    report = runner.execute(generate_trace(spec))
    return kernel, corpus, population, cache, report, {
        "versioning": versioning,
        "replication": replication,
        "audit": audit,
        "replica_fs": replica_fs,
    }


class TestChaosInvariants:
    def test_trace_completed(self, chaos_run):
        _, _, _, _, report, _ = chaos_run
        assert report.events == 1200
        assert report.reads > 800

    def test_capacity_never_exceeded(self, chaos_run):
        _, _, _, cache, _, _ = chaos_run
        assert cache.used_bytes <= cache.capacity_bytes

    def test_store_refcounts_consistent(self, chaos_run):
        _, _, _, cache, _, _ = chaos_run
        by_signature: dict = {}
        for entry in cache.entries():
            by_signature[entry.signature] = (
                by_signature.get(entry.signature, 0) + 1
            )
        assert len(cache.store) == len(by_signature)
        for signature, count in by_signature.items():
            assert cache.store.refcount(signature) == count

    def test_cache_transparent_after_the_storm(self, chaos_run):
        kernel, corpus, population, cache, _, _ = chaos_run
        for user_index in range(3):
            for document_index in range(10):
                reference = population.reference(user_index, document_index)
                cached = cache.read(reference).content
                fresh = kernel.read(reference).content
                assert cached == fresh, (user_index, document_index)

    def test_versioning_archived_every_in_band_write_of_doc0(self, chaos_run):
        kernel, corpus, _, _, report, extras = chaos_run
        versioning = extras["versioning"]
        # Every in-band write to doc 0 passed through getOutputStream at
        # the base, so the version count equals those writes.
        writes_to_doc0 = corpus[0].provider.store_count
        assert versioning.version_count == writes_to_doc0

    def test_replication_converged(self, chaos_run):
        kernel, corpus, _, _, _, extras = chaos_run
        kernel.ctx.clock.advance(2_500.0)  # one more replication period
        assert (
            extras["replication"].replica_content
            == corpus[0].provider.peek()
        )

    def test_audit_saw_every_read_of_its_document(self, chaos_run):
        _, _, _, cache, _, extras = chaos_run
        audit = extras["audit"]
        # Audit records = direct reads + forwarded cache hits; at minimum
        # it must never have *missed* one: forwarded + direct >= hits
        # observed for that (doc, user) key.  We check internal
        # consistency: every forwarded record is flagged.
        assert all(
            record.via_cache in (True, False) for record in audit.trail
        )
        assert audit.reads_observed == len(audit.trail)

    def test_staleness_bounded(self, chaos_run):
        _, _, _, cache, _, _ = chaos_run
        # Notifiers + verifiers together: some TTL-window staleness is
        # possible, runaway staleness is a bug.
        assert cache.stats.staleness_ratio < 0.25

    def test_stats_merge_roundtrip(self, chaos_run):
        _, _, _, cache, _, _ = chaos_run
        merged = CacheStats.merged([cache.stats])
        assert merged.hits == cache.stats.hits
        assert merged.invalidations == cache.stats.invalidations


# -- chaos under an active fault plan ----------------------------------------

#: The faulted trace spans ~36 s of virtual time (300 events × 120 ms);
#: both outage windows sit inside it.
_FAULT_OUTAGE = OutageWindow(8_000.0, 12_000.0)
_FAULT_LINK_OUTAGE = OutageWindow(20_000.0, 24_000.0, target="reference-to-base")


def _run_faulted_chaos(seed: int, n_events: int = 300):
    """One mixed trace under outages + a lossy notifier bus."""
    kernel = PlacelessKernel()
    kernel.ctx.faults = FaultPlan(
        kernel.ctx.clock,
        seed=seed,
        outages=(_FAULT_OUTAGE,),
        link_outages=(_FAULT_LINK_OUTAGE,),
        fetch_failure_probability=0.03,
        notifier_loss_probability=0.10,
        notifier_delay_probability=0.10,
        notifier_delay_ms=300.0,
    )
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=8, ttl_ms=5_000.0, seed=seed),
    )
    population = build_population(
        kernel, corpus, n_users=3, personalized_fraction=0.3, seed=seed
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=2 * sum(d.size_bytes for d in corpus),
        retry_policy=RetryPolicy(max_attempts=3, base_delay_ms=50.0),
        serve_stale_on_error=True,
        stale_serve_max_age_ms=60_000.0,
        verifier_quarantine_threshold=5,
        name="faulted-chaos",
    )
    runner = TraceRunner(
        kernel, corpus, population.references, caches=cache,
        writes_via_cache=False,
    )
    spec = TraceSpec(
        n_events=n_events, n_documents=8, n_users=3,
        p_write=0.06, p_out_of_band=0.06,
        mean_think_time_ms=120.0,
        seed=seed,
    )
    report = runner.execute(generate_trace(spec))
    # The plan is returned separately: the recovery test detaches it
    # from the context, but later tests still inspect its stats.
    return kernel, corpus, population, cache, report, kernel.ctx.faults


@pytest.fixture(scope="module")
def faulted_chaos_run():
    return _run_faulted_chaos(seed=CHAOS_SEED)


class TestFaultedChaosInvariants:
    """The chaos invariants must survive an actively hostile world."""

    def test_trace_completed_despite_faults(self, faulted_chaos_run):
        _, _, _, _, report, plan = faulted_chaos_run
        assert report.events == 300
        assert plan.stats.total > 0  # faults actually fired

    def test_availability_stayed_high(self, faulted_chaos_run):
        _, _, _, _, report, _ = faulted_chaos_run
        # Retries + degradation absorb most injected failures.
        assert report.availability >= 0.9

    def test_capacity_never_exceeded(self, faulted_chaos_run):
        _, _, _, cache, _, _ = faulted_chaos_run
        assert cache.used_bytes <= cache.capacity_bytes

    def test_store_refcounts_consistent(self, faulted_chaos_run):
        _, _, _, cache, _, _ = faulted_chaos_run
        by_signature: dict = {}
        for entry in cache.entries():
            by_signature[entry.signature] = (
                by_signature.get(entry.signature, 0) + 1
            )
        assert len(cache.store) == len(by_signature)
        for signature, count in by_signature.items():
            assert cache.store.refcount(signature) == count

    def test_transparency_restored_after_recovery(self, faulted_chaos_run):
        kernel, corpus, population, cache, _, _ = faulted_chaos_run
        # Repair the world: past every window, faults off, quarantines
        # lifted, pending delayed deliveries drained.
        kernel.ctx.clock.advance(5_000.0)
        kernel.ctx.faults = None
        cache.degradation_policy.breakers.reset_all()
        for user_index in range(3):
            for document_index in range(8):
                reference = population.reference(user_index, document_index)
                cached = cache.read(reference).content
                fresh = kernel.read(reference).content
                assert cached == fresh, (user_index, document_index)

    def test_lost_callbacks_were_injected_and_some_caught(
        self, faulted_chaos_run
    ):
        _, _, _, cache, _, plan = faulted_chaos_run
        assert plan.stats.notifications_lost > 0
        assert cache.bus.stats.lost > 0
        # Detection is workload-dependent; it must never exceed losses.
        assert (
            cache.stats.dropped_notifier_detected <= cache.bus.stats.lost
        )

    def test_same_seed_reproduces_the_run_exactly(self):
        _, _, _, first_cache, first_report, first_plan = _run_faulted_chaos(
            seed=123, n_events=150
        )
        _, _, _, second_cache, second_report, second_plan = _run_faulted_chaos(
            seed=123, n_events=150
        )
        assert first_plan.injection_trace() == second_plan.injection_trace()
        assert first_report.availability == second_report.availability
        assert vars(first_cache.stats) == vars(second_cache.stats)
