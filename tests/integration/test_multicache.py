"""Multiple caches on one bus: cross-machine consistency.

Each user machine runs its own application-level cache; all register on
the shared invalidation bus.  A write through any path must invalidate
the affected entries in *every* cache — the paper's "Notifiers send a
notification to each of the affected caches".
"""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache, WriteMode
from repro.cache.notifiers import InvalidationBus
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider


@pytest.fixture
def machines(kernel, user, other_user):
    provider = MemoryProvider(kernel.ctx, b"shared state v1")
    base = kernel.create_document(user, provider, "doc")
    alice_ref = kernel.space(user).add_reference(base)
    bob_ref = kernel.space(other_user).add_reference(base)
    bus = InvalidationBus(kernel.ctx)
    alice_cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, bus=bus, name="alice-machine"
    )
    bob_cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, bus=bus, name="bob-machine"
    )
    return kernel, provider, alice_ref, bob_ref, alice_cache, bob_cache


class TestCrossCacheInvalidation:
    def test_write_through_one_cache_invalidates_the_other(self, machines):
        kernel, provider, alice_ref, bob_ref, alice_cache, bob_cache = machines
        alice_cache.read(alice_ref)
        bob_cache.read(bob_ref)
        bob_cache.write(bob_ref, b"bob's version")
        outcome = alice_cache.read(alice_ref)
        assert not outcome.hit
        assert outcome.content == b"bob's version"

    def test_direct_kernel_write_invalidates_all_caches(self, machines):
        kernel, provider, alice_ref, bob_ref, alice_cache, bob_cache = machines
        alice_cache.read(alice_ref)
        bob_cache.read(bob_ref)
        kernel.write(alice_ref, b"written by a cacheless app")
        assert not alice_cache.read(alice_ref).hit or True
        # Bob's machine definitely sees the invalidation: another user
        # opened the document for writing.
        outcome = bob_cache.read(bob_ref)
        assert outcome.content == b"written by a cacheless app"

    def test_universal_property_change_reaches_every_cache(self, machines):
        kernel, provider, alice_ref, bob_ref, alice_cache, bob_cache = machines
        alice_cache.read(alice_ref)
        bob_cache.read(bob_ref)
        alice_ref.base.attach(TranslationProperty())
        assert not alice_cache.read(alice_ref).hit
        assert not bob_cache.read(bob_ref).hit

    def test_personal_change_does_not_disturb_other_machine(self, machines):
        kernel, provider, alice_ref, bob_ref, alice_cache, bob_cache = machines
        alice_cache.read(alice_ref)
        bob_cache.read(bob_ref)
        alice_ref.attach(TranslationProperty())
        assert not alice_cache.read(alice_ref).hit
        assert bob_cache.read(bob_ref).hit

    def test_verifiers_cover_for_a_disconnected_cache(self, machines):
        # Defense in depth: when a cache drops off the bus (so notifier
        # deliveries to it are lost), its verifiers still catch the
        # change on the next hit attempt.
        kernel, provider, alice_ref, bob_ref, alice_cache, bob_cache = machines
        alice_cache.read(alice_ref)
        bob_cache.read(bob_ref)
        bus = alice_cache.bus
        bus.unregister(alice_cache.cache_id)
        bob_cache.write(bob_ref, b"update after disconnect")
        assert bus.stats.dropped >= 1  # deliveries to alice were lost
        outcome = alice_cache.read(alice_ref)
        assert not outcome.hit
        assert outcome.content == b"update after disconnect"
        assert alice_cache.stats.verifier_invalidations == 1

    def test_disconnected_cache_without_verifiers_serves_stale(
        self, kernel, user, other_user
    ):
        # The same situation with verifiers off: the cache is silently
        # stale — why the paper needs both mechanisms.
        provider = MemoryProvider(kernel.ctx, b"v1")
        base = kernel.create_document(user, provider, "doc")
        alice_ref = kernel.space(user).add_reference(base)
        bob_ref = kernel.space(other_user).add_reference(base)
        bus = InvalidationBus(kernel.ctx)
        alice_cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, bus=bus,
            use_verifiers=False, name="alice-noverify",
        )
        bob_cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, bus=bus, name="bob2",
        )
        alice_cache.read(alice_ref)
        bus.unregister(alice_cache.cache_id)
        bob_cache.write(bob_ref, b"v2")
        stale = alice_cache.read(alice_ref)
        assert stale.hit
        assert stale.content == b"v1"


class TestWriteBackAcrossMachines:
    def test_unflushed_write_back_is_invisible_remotely(self, kernel, user,
                                                        other_user):
        provider = MemoryProvider(kernel.ctx, b"v1")
        base = kernel.create_document(user, provider, "doc")
        alice_ref = kernel.space(user).add_reference(base)
        bob_ref = kernel.space(other_user).add_reference(base)
        bus = InvalidationBus(kernel.ctx)
        alice_cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, bus=bus,
            write_mode=WriteMode.WRITE_BACK, name="alice-wb",
        )
        bob_cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, bus=bus, name="bob",
        )
        alice_cache.write(alice_ref, b"alice's buffered draft")
        # Until Alice flushes, Bob reads the old version — the expected
        # (and documented) write-back consistency window.
        assert bob_cache.read(bob_ref).content == b"v1"
        alice_cache.flush(alice_ref)
        outcome = bob_cache.read(bob_ref)
        assert outcome.content == b"alice's buffered draft"
        assert not outcome.hit  # the flush invalidated Bob's entry
