"""The durable tier must not move observable bytes.

Two equivalence pins:

* **storage off** — the default wiring (no storage policy) reproduces
  every golden digest bit-for-bit: adding the L2 stage to the pipeline
  must be invisible when the tier is absent;
* **storage on** — over an eviction-heavy workload with out-of-band
  source mutations, every read returns byte-identical content with the
  tier on and off.  The tier may change *where* bytes come from
  (promote vs refetch) and what they cost, never what they are.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultStoragePolicy
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider
from tests.property.test_pipeline_equivalence import (
    _CONFIGS,
    GOLDEN_DIGESTS,
    digest,
    run_seeded_workload,
)

N_DOCS = 8
N_OPS = 160


def _run_workload(storage: bool, seed: int) -> list[bytes]:
    """One deterministic read/mutate trace; returns each read's bytes."""
    kernel = PlacelessKernel()
    user = kernel.create_user("alice")
    providers, references = [], []
    for i in range(N_DOCS):
        content = f"doc-{i:02d}:".encode() + bytes(range(180))
        provider = MemoryProvider(kernel.ctx, content)
        providers.append(provider)
        references.append(kernel.import_document(user, provider, f"d{i}"))
    size = len(providers[0].peek())
    cache = DocumentCache(
        kernel,
        capacity_bytes=3 * size,  # far below the working set: evictions
        storage_policy=DefaultStoragePolicy() if storage else None,
        name=f"golden-l2-{'on' if storage else 'off'}",
    )
    rng = random.Random(seed)
    served: list[bytes] = []
    for op in range(N_OPS):
        index = rng.randrange(N_DOCS)
        if rng.random() < 0.08:
            # Out-of-band mutation: the provider changes under the
            # cache with no notification.  Both arms must converge on
            # the new bytes the same way.
            providers[index].store(
                f"mutated-{index}-at-op-{op}".encode()
            )
        kernel.ctx.clock.advance(10.0)
        served.append(cache.read(references[index]).content)
    return served


class TestStorageOffIsInvisible:
    """No storage policy ⇒ the golden digests reproduce exactly."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
    def test_pinned_digest_reproduces(self, name):
        snapshot = run_seeded_workload(**_CONFIGS[name])
        assert digest(snapshot) == GOLDEN_DIGESTS[name], (
            f"golden digest {name!r} moved: the L2 stage changed "
            "observable behaviour with storage disabled"
        )


class TestStorageOnServesIdenticalBytes:
    """The tier changes provenance and cost, never content."""

    @pytest.mark.parametrize("seed", (3, 17, 29))
    def test_l2_on_off_byte_equivalence(self, seed):
        assert _run_workload(False, seed) == _run_workload(True, seed)
