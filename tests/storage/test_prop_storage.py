"""Property: a crash at any virtual instant never yields a stale byte.

The recovery contract of the durable tier: whatever instant the crash
lands on — mid-demotion, mid-promotion, with arbitrary disk faults in
flight — every byte served after the restart matches the backing
source at serve time.  Recovered records are chain-, source-, CRC- and
verifier-gated, so a copy whose source changed while the cache was
down must be refused and refetched, never served.

Runs under the chaos seeds (77, 101, 202) the fault tier pins
elsewhere, with the diskchaos-grade disk seams active throughout.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultStoragePolicy
from repro.faults.plan import FaultPlan
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider

N_DOCS = 5
CHAOS_SEEDS = (77, 101, 202)
#: How long past the crash the workload keeps reading (virtual ms).
_TAIL_MS = 1_200.0


@settings(deadline=None, max_examples=15)
@given(
    seed=st.sampled_from(CHAOS_SEEDS),
    crash_at=st.floats(min_value=50.0, max_value=2_500.0),
    mutate_mask=st.integers(min_value=0, max_value=2 ** N_DOCS - 1),
)
def test_no_stale_byte_served_across_crash(seed, crash_at, mutate_mask):
    kernel = PlacelessKernel()
    kernel.ctx.faults = FaultPlan(
        kernel.ctx.clock,
        seed=seed,
        cache_crashes=(crash_at,),
        disk_write_fail_probability=0.15,
        disk_fsync_lost_probability=0.10,
        disk_corrupt_probability=0.10,
        disk_slow_io_probability=0.10,
    )
    user = kernel.create_user("alice")
    providers, references, truth = [], [], []
    for i in range(N_DOCS):
        content = f"doc-{i}:".encode() + bytes(range(120))
        provider = MemoryProvider(kernel.ctx, content)
        providers.append(provider)
        references.append(kernel.import_document(user, provider, f"d{i}"))
        truth.append(content)
    size = len(truth[0])
    cache = DocumentCache(
        kernel,
        capacity_bytes=2 * size,  # constant demotion pressure
        storage_policy=DefaultStoragePolicy(),
        name="prop-storage",
    )
    clock = kernel.ctx.clock
    mutated = False
    step = 0
    while clock.now_ms < crash_at + _TAIL_MS:
        clock.advance(10.0)  # the scheduled crash+restart fires in here
        if not mutated and clock.now_ms >= crash_at:
            # The cache is freshly restarted and its L1 is empty: any
            # stale byte from here on could only come off the disk
            # tier.  Rewrite a drawn subset of sources out-of-band so
            # every recovered copy of them is silently stale.
            for index in range(N_DOCS):
                if mutate_mask >> index & 1:
                    rewritten = f"rewritten-{index}-while-down".encode()
                    providers[index].store(rewritten)
                    truth[index] = rewritten
            mutated = True
        index = step % N_DOCS
        step += 1
        outcome = cache.read(references[index])
        assert outcome.content == truth[index], (
            f"stale bytes served for doc {index} at "
            f"{clock.now_ms:.0f}ms (seed {seed}, crash at "
            f"{crash_at:.0f}ms, disposition {outcome.disposition!r})"
        )
    assert cache.storage_stats.crashes == 1
    assert cache.storage_stats.restarts == 1
