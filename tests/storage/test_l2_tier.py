"""The durable L2 tier through the cache: demote, promote, crash, degrade."""

from __future__ import annotations

from repro.cache.manager import DocumentCache
from repro.cache.memo import ChainFingerprint, MemoRecord
from repro.cache.pipeline import WriteMode
from repro.cache.policies import (
    DefaultMemoPolicy,
    DefaultRecoveryPolicy,
    DefaultStoragePolicy,
)
from repro.content.signature import sign
from repro.faults.plan import FaultPlan
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider
from repro.storage import K_JOURNAL


def _deployment(n_docs=6, slots=2, *, faults=None, storage=None, **cache_kwargs):
    """*n_docs* same-sized documents over an L1 holding *slots* of them."""
    kernel = PlacelessKernel()
    if faults is not None:
        kernel.ctx.faults = FaultPlan(kernel.ctx.clock, **faults)
    user = kernel.create_user("alice")
    providers, references = [], []
    for i in range(n_docs):
        content = f"doc-{i:02d}:".encode() + bytes(range(200))
        provider = MemoryProvider(kernel.ctx, content)
        providers.append(provider)
        references.append(kernel.import_document(user, provider, f"d{i}"))
    size = len(providers[0].peek())
    cache = DocumentCache(
        kernel,
        capacity_bytes=slots * size,
        storage_policy=(
            storage if storage is not None else DefaultStoragePolicy()
        ),
        **cache_kwargs,
    )
    return kernel, cache, providers, references


class TestWiring:
    def test_off_by_default(self):
        cache = DocumentCache(PlacelessKernel(), capacity_bytes=1024)
        assert cache.storage is None
        assert cache.storage_stats is None

    def test_tier_present_with_policy(self):
        _, cache, _, _ = _deployment()
        assert cache.storage is not None
        assert len(cache.storage) == 0


class TestDemotePromote:
    def test_eviction_demotes_to_disk(self):
        _, cache, providers, references = _deployment()
        for reference in references:
            cache.read(reference)
        stats = cache.storage_stats
        assert stats.demotions == 4  # 6 docs through 2 slots
        assert len(cache.storage) == 4

    def test_promote_serves_without_refetch(self):
        _, cache, providers, references = _deployment()
        for reference in references:
            cache.read(reference)
        outcome = cache.read(references[0])
        assert outcome.disposition == "miss-promoted"
        assert outcome.content == providers[0].peek()
        assert cache.storage_stats.promotions == 1

    def test_tiering_is_exclusive(self):
        _, cache, _, references = _deployment()
        for reference in references:
            cache.read(reference)
        key = cache.storage.catalog_keys()[0]
        assert key in cache.storage
        # Promoting the entry moves it back up: the L2 record is dropped.
        for reference in references:
            outcome = cache.read(reference)
            if outcome.disposition == "miss-promoted" and (
                key not in cache.storage
            ):
                break
        assert key not in cache.storage

    def test_verify_on_promote_runs_verifiers(self):
        _, cache, _, references = _deployment()
        for reference in references:
            cache.read(reference)
        cache.read(references[0])
        assert cache.storage_stats.promote_verifier_runs >= 1

    def test_promote_refuses_changed_source(self):
        _, cache, providers, references = _deployment()
        for reference in references:
            cache.read(reference)
        # Out-of-band mutation: no notification reaches the cache, the
        # demoted copy on disk is silently stale.
        providers[0].store(b"rewritten behind the cache's back")
        outcome = cache.read(references[0])
        assert outcome.content == b"rewritten behind the cache's back"
        assert outcome.disposition != "miss-promoted"
        assert cache.storage_stats.promote_source_mismatches == 1


class TestCrashRestart:
    def test_restart_recovers_demoted_entries(self):
        _, cache, providers, references = _deployment()
        for reference in references:
            cache.read(reference)
        demoted = len(cache.storage)
        cache.crash()
        assert len(cache.storage) == 0  # volatile catalog gone
        cache.restart()
        stats = cache.storage_stats
        assert stats.recovered_entries == demoted
        assert stats.restarts == 1

    def test_recovered_entry_is_verifier_gated_on_first_serve(self):
        _, cache, providers, references = _deployment()
        for reference in references:
            cache.read(reference)
        cache.crash()
        cache.restart()
        runs_before = cache.storage_stats.promote_verifier_runs
        outcome = cache.read(references[0])
        assert outcome.disposition == "miss-promoted"
        assert outcome.content == providers[0].peek()
        assert cache.storage_stats.recovered_promotions == 1
        assert cache.storage_stats.promote_verifier_runs == runs_before + 1

    def test_recovered_entry_refuses_changed_source(self):
        _, cache, providers, references = _deployment()
        for reference in references:
            cache.read(reference)
        cache.crash()
        providers[0].store(b"changed while the cache was down")
        cache.restart()
        outcome = cache.read(references[0])
        assert outcome.content == b"changed while the cache was down"
        assert outcome.disposition != "miss-promoted"

    def test_unsynced_demotions_do_not_survive_a_lying_fsync(self):
        _, cache, _, references = _deployment(
            faults={"seed": 7, "disk_fsync_lost_probability": 1.0},
        )
        for reference in references:
            cache.read(reference)
        assert cache.storage_stats.demotions == 4
        cache.crash()
        cache.restart()
        # Every fsync lied, so nothing on disk was durable: recovery
        # comes back empty rather than trusting ghost records.
        assert cache.storage_stats.recovered_entries == 0


class TestDegradation:
    def test_breaker_trips_to_l1_only_and_reads_stay_correct(self):
        _, cache, providers, references = _deployment(
            faults={"seed": 7, "disk_write_fail_probability": 1.0},
        )
        for index, reference in enumerate(references):
            assert cache.read(reference).content == providers[index].peek()
        stats = cache.storage_stats
        assert stats.write_failures >= 3
        assert stats.breaker_trips == 1
        assert cache.storage.breaker_open
        assert len(cache.storage) == 0  # nothing ever landed on disk
        # Further evictions skip the disk entirely (L1-only fallback).
        skips_before = stats.fallback_skips
        for index, reference in enumerate(references):
            assert cache.read(reference).content == providers[index].peek()
        assert stats.fallback_skips > skips_before


class TestJournalSpill:
    def _write_back_cache(self):
        return _deployment(
            write_mode=WriteMode.WRITE_BACK,
            use_verifiers=False,
            recovery_policy=DefaultRecoveryPolicy(),
            slots=6,
        )

    def test_spilled_journal_replays_after_total_process_loss(self):
        _, cache, providers, references = self._write_back_cache()
        cache.write(references[0], b"acknowledged-write")
        assert cache.storage_stats.journal_spills == 1
        cache.crash()
        # Model full process death: the in-memory journal is gone too;
        # only what the tier spilled to disk survives.
        cache.recovery.journal.records.clear()
        cache.restart()
        assert cache.storage_stats.journal_replayed == 1
        cache.flush_all()
        assert providers[0].peek() == b"acknowledged-write"

    def test_duplicated_tail_replays_once(self):
        _, cache, providers, references = self._write_back_cache()
        cache.write(references[0], b"acknowledged-write")
        log = cache.storage.journal_log
        records, _ = log.scan_records()
        kind, payload, _ = records[-1]
        assert kind == K_JOURNAL
        # The exact shape an fsync-lost spill retry leaves behind: the
        # same journal frame appended twice, both durable.
        log.append(K_JOURNAL, payload)
        log.sync()
        cache.crash()
        cache.recovery.journal.records.clear()
        cache.restart()
        assert cache.storage_stats.journal_replayed == 1
        flushes_before = cache.stats.flushes
        cache.flush_all()
        assert cache.stats.flushes == flushes_before + 1
        assert providers[0].peek() == b"acknowledged-write"

    def test_flushed_writes_are_not_replayed(self):
        _, cache, providers, references = self._write_back_cache()
        cache.write(references[0], b"flushed-before-crash")
        cache.flush(references[0])
        cache.crash()
        cache.recovery.journal.records.clear()
        cache.restart()
        assert cache.storage_stats.journal_replayed == 0

    def test_in_memory_journal_coalesces_duplicated_tail(self):
        _, cache, _, references = self._write_back_cache()
        journal = cache.recovery.journal
        cache.write(references[0], b"same bytes")
        record = journal.records[-1]
        # The spill-retry shape at the in-memory layer: re-appending the
        # tail's exact bytes returns the tail instead of a new record.
        assert journal.append(
            record.key, record.reference, b"same bytes", 0.0
        ) is record
        assert len(journal.records) == 1


class TestMemoSpill:
    def test_verifier_free_memo_record_spills_and_reloads(self):
        _, cache, _, _ = _deployment(
            memo_policy=DefaultMemoPolicy(), slots=6,
        )
        tier = cache.storage
        record = MemoRecord(
            source_signature=sign(b"source bytes"),
            fingerprint=ChainFingerprint("chain-fp"),
            output_signature=None,  # negative record: verifier-free
        )
        tier.spill_memo_record(record)
        assert cache.storage_stats.memo_spills == 1
        cache.crash()
        cache.restart()
        assert cache.storage_stats.memo_reloaded == 1
        reloaded = cache._core.memo.lookup(
            record.source_signature, record.fingerprint
        )
        assert reloaded is not None and reloaded.is_negative

    def test_records_with_verifiers_stay_in_memory_only(self):
        _, cache, _, references = _deployment(
            memo_policy=DefaultMemoPolicy(), slots=6,
        )
        for reference in references:
            cache.read(reference)
        # Memory-provider documents always carry a generation verifier,
        # so their memo records must never spill (a reloaded record
        # without its live verifiers would dodge class-(d) checks).
        assert cache.storage_stats.memo_spills == 0
