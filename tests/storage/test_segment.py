"""Segment-log framing: CRC skips, torn tails, the durable watermark."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import (
    K_CONTENT,
    K_DEMOTE,
    SegmentLog,
    pack_fields,
    unpack_fields,
)


class TestFraming:
    def test_append_read_round_trip(self, tmp_path):
        log = SegmentLog(tmp_path / "t.seg")
        first = log.append(K_CONTENT, b"alpha")
        second = log.append(K_DEMOTE, b"beta")
        assert log.read(first) == (K_CONTENT, b"alpha")
        assert log.read(second) == (K_DEMOTE, b"beta")

    def test_scan_returns_records_in_order(self, tmp_path):
        log = SegmentLog(tmp_path / "t.seg")
        log.append(K_CONTENT, b"one")
        log.append(K_CONTENT, b"two")
        records, corrupt = log.scan_records()
        assert corrupt == 0
        assert [(k, p) for k, p, _ in records] == [
            (K_CONTENT, b"one"), (K_CONTENT, b"two"),
        ]

    def test_pack_unpack_fields_round_trip(self):
        payload = pack_fields(b"meta", b"content \x00 with zeros", b"")
        assert unpack_fields(payload) == [
            b"meta", b"content \x00 with zeros", b"",
        ]

    def test_unpack_fields_raises_on_truncation(self):
        payload = pack_fields(b"meta", b"content")
        with pytest.raises(StorageError):
            unpack_fields(payload[:-3])


class TestDurability:
    def test_crash_truncates_to_durable_watermark(self, tmp_path):
        log = SegmentLog(tmp_path / "t.seg")
        log.append(K_CONTENT, b"kept")
        log.sync()
        log.append(K_CONTENT, b"lost-with-the-page-cache")
        assert log.durable_size < log.size
        log.crash()
        records, _ = log.scan_records()
        assert [p for _, p, _ in records] == [b"kept"]

    def test_lying_fsync_does_not_advance_watermark(self, tmp_path):
        log = SegmentLog(tmp_path / "t.seg")
        log.append(K_CONTENT, b"kept")
        log.sync()
        log.append(K_CONTENT, b"fsync-lied")
        log.sync(lost=True)
        assert log.durable_size < log.size
        log.crash()
        records, _ = log.scan_records()
        assert [p for _, p, _ in records] == [b"kept"]

    def test_reopened_log_trusts_on_disk_bytes(self, tmp_path):
        path = tmp_path / "t.seg"
        log = SegmentLog(path)
        log.append(K_CONTENT, b"persisted")
        log.sync()
        fresh = SegmentLog(path)
        records, corrupt = fresh.scan_records()
        assert corrupt == 0
        assert [p for _, p, _ in records] == [b"persisted"]


class TestDamage:
    def test_corrupt_record_skipped_and_counted(self, tmp_path):
        log = SegmentLog(tmp_path / "t.seg")
        log.append(K_CONTENT, b"good-one")
        log.append(K_CONTENT, b"garbled-in-flight", corrupt=True)
        log.append(K_CONTENT, b"good-two")
        records, corrupt = log.scan_records()
        assert corrupt == 1
        assert log.corrupt_skips == 1
        # The scan steps over the damaged frame and keeps later records.
        assert [p for _, p, _ in records] == [b"good-one", b"good-two"]

    def test_corrupt_record_fails_point_read(self, tmp_path):
        log = SegmentLog(tmp_path / "t.seg")
        offset = log.append(K_CONTENT, b"garbled", corrupt=True)
        with pytest.raises(StorageError):
            log.read(offset)

    def test_torn_tail_truncated_on_scan(self, tmp_path):
        path = tmp_path / "t.seg"
        log = SegmentLog(path)
        log.append(K_CONTENT, b"whole")
        log.sync()
        with open(path, "ab") as handle:
            handle.write(b"PL\x01")  # a partial header: torn mid-append
        fresh = SegmentLog(path)
        records, corrupt = fresh.scan_records()
        assert corrupt == 0
        assert fresh.torn_truncations == 1
        assert [p for _, p, _ in records] == [b"whole"]
        # The file itself was healed: a second scan is clean.
        records, _ = fresh.scan_records()
        assert fresh.torn_truncations == 1
        assert [p for _, p, _ in records] == [b"whole"]

    def test_garbage_magic_truncates(self, tmp_path):
        path = tmp_path / "t.seg"
        log = SegmentLog(path)
        log.append(K_CONTENT, b"whole")
        with open(path, "ab") as handle:
            handle.write(b"XX" + b"\x00" * 20)
        records, _ = log.scan_records()
        assert log.torn_truncations == 1
        assert [p for _, p, _ in records] == [b"whole"]


class TestCompaction:
    def test_replace_with_rewrites_atomically(self, tmp_path):
        log = SegmentLog(tmp_path / "t.seg")
        log.append(K_CONTENT, b"dead")
        log.append(K_CONTENT, b"live")
        before = log.size
        offsets = log.replace_with([(K_CONTENT, b"live")])
        assert log.size < before
        assert log.durable_size == log.size
        assert log.read(offsets[0]) == (K_CONTENT, b"live")
        records, corrupt = log.scan_records()
        assert corrupt == 0
        assert [p for _, p, _ in records] == [b"live"]
