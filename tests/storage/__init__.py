"""Durable-storage tier tests: segments, disk store, L2, crash recovery."""
