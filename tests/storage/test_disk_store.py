"""Disk content store: refcounts, verification, compaction, recovery."""

from __future__ import annotations

import pytest

from repro.content.signature import sign
from repro.errors import StorageError
from repro.storage import DiskContentStore


def _put(store: DiskContentStore, content: bytes):
    signature = sign(content)
    store.put_signed(content, signature)
    return signature


class TestRefcounts:
    def test_put_dedupes_and_counts_references(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        signature = _put(store, b"shared bytes")
        before = store.log.size
        _put(store, b"shared bytes")
        assert store.log.size == before  # deduped: no second frame
        assert store.refcount(signature) == 2

    def test_adopt_adds_a_reference(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        signature = _put(store, b"adopted")
        store.adopt(signature)
        assert store.refcount(signature) == 2

    def test_release_to_zero_forgets_the_blob(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        signature = _put(store, b"short-lived")
        store.release(signature)
        assert signature not in store
        assert store.refcount(signature) == 0

    def test_mismatched_signature_rejected(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        with pytest.raises(AssertionError):
            store.put_signed(b"content", sign(b"other content"))


class TestReads:
    def test_get_round_trips(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        signature = _put(store, b"bytes on the platter")
        assert store.get(signature) == b"bytes on the platter"
        assert store.size_of(signature) == len(b"bytes on the platter")

    def test_get_missing_raises(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        with pytest.raises(StorageError):
            store.get(sign(b"never stored"))

    def test_corrupt_write_detected_at_read(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        content = b"garbled on the way down"
        signature = sign(content)
        store.put_signed(content, signature, corrupt=True)
        with pytest.raises(StorageError):
            store.get(signature)


class TestRecovery:
    def test_reopen_rebuilds_index_with_zero_refcounts(self, tmp_path):
        path = tmp_path / "c.seg"
        store = DiskContentStore(path)
        signature = _put(store, b"survives reopen")
        store.sync()
        fresh = DiskContentStore(path)
        assert signature in fresh
        assert fresh.refcount(signature) == 0  # owners re-adopt
        assert fresh.get(signature) == b"survives reopen"

    def test_crash_loses_unsynced_content(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        durable = _put(store, b"synced")
        store.sync()
        volatile = _put(store, b"never synced")
        store.crash()
        assert durable in store
        assert volatile not in store

    def test_crash_rebuild_drops_corrupt_slots(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        good = _put(store, b"good")
        bad_content = b"bad bytes, bad disk"
        store.put_signed(bad_content, sign(bad_content), corrupt=True)
        store.sync()
        dropped_before = store.corrupt_dropped
        store.crash()
        assert good in store
        assert sign(bad_content) not in store
        assert store.corrupt_dropped == dropped_before + 1


class TestCompaction:
    def test_compact_frees_dead_bytes_and_keeps_live_reads(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        dead = _put(store, b"x" * 256)
        live = _put(store, b"y" * 64)
        store.release(dead)
        freed = store.compact()
        assert freed > 0
        assert store.get(live) == b"y" * 64
        assert dead not in store

    def test_compact_preserves_refcounts(self, tmp_path):
        store = DiskContentStore(tmp_path / "c.seg")
        live = _put(store, b"kept across the rewrite")
        store.adopt(live)
        store.compact()
        assert store.refcount(live) == 2
        store.release(live)
        assert live in store
