"""Unit tests for deadline budgets, admission control and retry caps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ContentUnavailableError,
    DeadlineExceededError,
    WorkloadError,
)
from repro.faults.retry import RetryPolicy
from repro.overload.admission import (
    PRIORITY_BULK,
    PRIORITY_CRITICAL,
    PRIORITY_QOS,
    AdmissionController,
)
from repro.overload.budget import DeadlineBudget
from repro.sim.clock import VirtualClock
from repro.sim.context import SimContext


class TestDeadlineBudget:
    def test_remaining_draws_down_with_the_clock(self):
        clock = VirtualClock()
        budget = DeadlineBudget(clock, 100.0)
        assert budget.remaining_ms == 100.0
        clock.advance(30.0)
        assert budget.remaining_ms == 70.0
        assert not budget.expired
        clock.advance(80.0)
        assert budget.remaining_ms == 0.0
        assert budget.expired

    def test_check_raises_only_after_expiry(self):
        clock = VirtualClock()
        budget = DeadlineBudget(clock, 10.0)
        budget.check("fetch")
        clock.advance(10.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            budget.check("fetch")
        assert "fetch" in str(excinfo.value)

    def test_back_dated_start_counts_queueing_delay(self):
        clock = VirtualClock()
        clock.advance(500.0)
        budget = DeadlineBudget(clock, 100.0, started_ms=450.0)
        assert budget.remaining_ms == 50.0
        assert budget.elapsed_ms == 50.0

    def test_future_start_and_zero_budget_rejected(self):
        clock = VirtualClock()
        with pytest.raises(WorkloadError):
            DeadlineBudget(clock, 100.0, started_ms=1.0)
        with pytest.raises(WorkloadError):
            DeadlineBudget(clock, 0.0)

    def test_infinite_budget_never_expires(self):
        clock = VirtualClock()
        budget = DeadlineBudget(clock, float("inf"))
        clock.advance(1e12)
        assert not budget.expired
        budget.check("anywhere")

    @given(
        budget_ms=st.floats(min_value=1.0, max_value=1e6),
        charges=st.lists(
            st.floats(min_value=0.0, max_value=1e4), max_size=30
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_remaining_is_monotone_nonincreasing(self, budget_ms, charges):
        """However the clock advances, remaining only ever shrinks and
        an expired budget stays expired."""
        clock = VirtualClock()
        budget = DeadlineBudget(clock, budget_ms)
        previous = budget.remaining_ms
        was_expired = budget.expired
        for charge in charges:
            clock.advance(charge)
            assert budget.remaining_ms <= previous
            assert budget.remaining_ms >= 0.0
            if was_expired:
                assert budget.expired
            previous = budget.remaining_ms
            was_expired = budget.expired


class TestAdmissionController:
    def _controller(self, **kwargs):
        clock = VirtualClock()
        defaults = dict(
            rate_per_s=100.0, burst=4.0, queue_limit=4.0,
            sojourn_threshold_ms=50.0,
        )
        defaults.update(kwargs)
        return clock, AdmissionController(clock, **defaults)

    def test_burst_admits_then_queue_full_sheds_bulk(self):
        clock, admission = self._controller()
        decisions = [admission.admit(PRIORITY_BULK) for _ in range(12)]
        admitted = [d for d in decisions if d.admitted]
        shed = [d for d in decisions if not d.admitted]
        # 4 burst tokens + 4 of overdraft headroom, then queue-full.
        assert len(admitted) == 8
        assert shed and all(d.reason == "queue-full" for d in shed)

    def test_critical_is_never_shed(self):
        clock, admission = self._controller()
        for _ in range(50):
            assert admission.admit(PRIORITY_CRITICAL).admitted

    def test_sojourn_sheds_bulk_before_qos(self):
        # Refill must stay negligible over the waiting window, or the
        # bucket recovers and the sojourn gate never becomes live.
        clock, admission = self._controller(rate_per_s=1.0)
        # Drain the bucket so the sojourn gate becomes live.
        while admission.tokens >= 1.0:
            admission.admit(PRIORITY_BULK)
        enqueued = clock.now_ms
        clock.advance(60.0)  # sojourn 60ms: over bulk's 50, under QoS's 100
        bulk = admission.admit(PRIORITY_BULK, enqueued_ms=enqueued)
        qos = admission.admit(PRIORITY_QOS, enqueued_ms=enqueued)
        assert not bulk.admitted and bulk.reason == "sojourn"
        assert qos.admitted

    def test_tokens_refill_from_the_virtual_clock(self):
        clock, admission = self._controller()
        while admission.tokens >= 1.0:
            admission.admit(PRIORITY_BULK)
        clock.advance(1_000.0)  # a full second at 100/s, capped at burst
        assert admission.tokens == 4.0
        assert admission.admit(PRIORITY_BULK).admitted


class TestRetryBudgetCap:
    def test_retry_gives_up_when_backoff_exceeds_budget(self):
        ctx = SimContext()
        policy = RetryPolicy(
            max_attempts=5, base_delay_ms=100.0, multiplier=1.0,
            max_delay_ms=100.0,
        )
        calls = 0

        def always_fails():
            nonlocal calls
            calls += 1
            raise ContentUnavailableError("down")

        before_ms = ctx.clock.now_ms
        with pytest.raises(ContentUnavailableError):
            policy.call(ctx, always_fails, budget_ms=50.0)
        # One attempt, no backoff charged: the 100ms sleep would blow
        # the 50ms budget, so the policy fails fast instead.
        assert calls == 1
        assert ctx.clock.now_ms == before_ms

    def test_retry_budget_callable_is_reevaluated(self):
        ctx = SimContext()
        clock = ctx.clock
        policy = RetryPolicy(
            max_attempts=4, base_delay_ms=40.0, multiplier=1.0,
            max_delay_ms=40.0,
        )
        budget = DeadlineBudget(clock, 100.0)
        calls = 0

        def always_fails():
            nonlocal calls
            calls += 1
            raise ContentUnavailableError("down")

        with pytest.raises(ContentUnavailableError):
            policy.call(
                ctx, always_fails, budget_ms=lambda: budget.remaining_ms
            )
        # 100ms allows two 40ms backoffs (3 attempts); the third
        # backoff would need 40 > 20 remaining, so it stops there.
        assert calls == 3
        assert clock.now_ms == 80.0
