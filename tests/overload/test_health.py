"""Unit tests for the shard health tracker and replica placement."""

from __future__ import annotations

import pytest

from repro.cache.entry import EntryKey
from repro.cluster.placement import (
    HashRingPolicy,
    PlacementRing,
    ReinforcedCounterPolicy,
)
from repro.errors import WorkloadError
from repro.ids import DocumentId, UserId
from repro.overload.health import HealthTracker


def _key(n: int) -> EntryKey:
    return EntryKey(
        document_id=DocumentId(f"doc-{n}"), user_id=UserId(f"user-{n}")
    )


class TestHealthTracker:
    def _tracker(self, **kwargs):
        defaults = dict(min_samples=2, gray_latency_factor=3.0)
        defaults.update(kwargs)
        return HealthTracker(**defaults)

    def test_only_fetch_path_reads_feed_latency(self):
        tracker = self._tracker()
        tracker.observe_read("s0", 100.0, fetched=False)
        tracker.observe_read("s0", 100.0, fetched=False)
        health = tracker.track("s0")
        assert health.reads == 2
        assert health.fetches == 0
        assert health.ewma_ms is None
        tracker.observe_read("s0", 10.0, fetched=True)
        assert health.fetches == 1
        assert health.ewma_ms == 10.0

    def test_fast_dispositions_are_excluded_by_the_bus_feed(self):
        class Event:
            stage = "read"
            elapsed_ms = 5.0

            def __init__(self, outcome):
                self.outcome = outcome

        tracker = self._tracker()
        for outcome in ("hit", "revalidated", "miss-adopted",
                        "miss-memoized", "miss-promoted"):
            tracker.on_event("s0", Event(outcome))
        assert tracker.track("s0").fetches == 0
        tracker.on_event("s0", Event("miss"))
        assert tracker.track("s0").fetches == 1

    def test_gray_needs_samples_on_both_sides(self):
        tracker = self._tracker()
        tracker.observe_read("slow", 90.0)
        tracker.observe_read("slow", 90.0)
        # No healthy peer floor yet: cannot be gray.
        assert not tracker.is_gray("slow")
        tracker.observe_read("fast", 10.0)
        assert not tracker.is_gray("slow")  # peer under min_samples
        tracker.observe_read("fast", 10.0)
        assert tracker.is_gray("slow")      # 90 >= 3 x 10
        assert not tracker.is_gray("fast")

    def test_error_streak_fails_over_and_successes_recover(self):
        tracker = self._tracker(error_threshold=3, recovery_successes=2)
        for _ in range(2):
            tracker.observe_error("s0")
        assert not tracker.is_unhealthy("s0")
        tracker.observe_error("s0")
        assert tracker.is_unhealthy("s0")
        assert tracker.failovers == 1
        tracker.observe_read("s0", 5.0)
        assert tracker.is_unhealthy("s0")
        tracker.observe_read("s0", 5.0)
        assert not tracker.is_unhealthy("s0")
        assert tracker.recoveries == 1

    def test_a_success_resets_the_error_streak(self):
        tracker = self._tracker(error_threshold=3)
        tracker.observe_error("s0")
        tracker.observe_error("s0")
        tracker.observe_read("s0", 5.0)
        tracker.observe_error("s0")
        assert not tracker.is_unhealthy("s0")

    def test_p95_healthy_pools_only_clean_shards(self):
        tracker = self._tracker()
        for _ in range(4):
            tracker.observe_read("fast", 10.0)
            tracker.observe_read("gray", 100.0)
        assert tracker.is_gray("gray")
        assert tracker.p95_healthy_ms() == 10.0
        assert tracker.p95_healthy_ms(excluding="fast") is None

    def test_snapshot_reports_states_and_forget_drops(self):
        tracker = self._tracker()
        for _ in range(2):
            tracker.observe_read("fast", 10.0)
            tracker.observe_read("gray", 100.0)
        for _ in range(3):
            tracker.observe_error("down")
        table = tracker.snapshot()
        assert table["fast"]["state"] == "healthy"
        assert table["gray"]["state"] == "gray"
        assert table["down"]["state"] == "unhealthy"
        assert table["fast"]["fetches"] == 2
        tracker.forget("gray")
        assert "gray" not in tracker.snapshot()

    def test_constructor_validation(self):
        with pytest.raises(WorkloadError):
            HealthTracker(ewma_alpha=0.0)
        with pytest.raises(WorkloadError):
            HealthTracker(gray_latency_factor=1.0)
        with pytest.raises(WorkloadError):
            HealthTracker(min_samples=0)


class TestReplicaPlacement:
    def test_replica_differs_from_primary_and_is_deterministic(self):
        ring = PlacementRing(["s0", "s1", "s2"])
        for n in range(50):
            key = _key(n)
            primary = ring.place(key)
            replica = ring.replica_for(key, primary)
            assert replica is not None
            assert replica != primary
            assert replica == ring.replica_for(key, primary)

    def test_single_shard_ring_has_no_replica(self):
        ring = PlacementRing(["only"])
        assert ring.replica_for(_key(1), "only") is None

    def test_policies_delegate_to_the_ring(self):
        key = _key(7)
        hash_policy = HashRingPolicy(["s0", "s1"])
        primary = hash_policy.place(key)
        assert hash_policy.replica_for(key, primary) != primary
        counter_policy = ReinforcedCounterPolicy(
            ["s0", "s1"], pin_threshold=1
        )
        # Pin the key to its current shard: the backup must still come
        # off the ring, never the pin.
        counter_policy.note_access(key)
        pinned = counter_policy.place(key)
        assert counter_policy.replica_for(key, pinned) != pinned
