"""Flash-crowd shedding through ``read_many`` and cache/cluster parity.

A 32-way batch against a deliberately tiny admission allowance is the
paper's overload story in miniature: the batch always runs to
termination, shed and deadline-failed reads come back *in place* as
typed errors (an overloaded batch is an expected outcome, not a caller
bug), bulk sheds first and critical never does — and a standalone
cache and a cluster make position-identical decisions for the same
workload.
"""

from __future__ import annotations

from repro.cache.manager import CacheReadOutcome, DocumentCache
from repro.cache.policies import DefaultOverloadPolicy
from repro.cluster import CacheCluster
from repro.errors import DeadlineExceededError, OverloadShedError
from repro.placeless.kernel import PlacelessKernel
from repro.properties.qos import AlwaysAvailableProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

_SEED = 31
_N_USERS = 8
_N_DOCUMENTS = 4


def _tight_policy(**overrides):
    """Admission so small a 32-way flash crowd must mostly shed."""
    settings = dict(
        deadlines=False,
        hedging=False,
        admission_rate_per_s=1.0,
        admission_burst=2.0,
        queue_limit=2.0,
        sojourn_threshold_ms=0.5,
    )
    settings.update(overrides)
    return DefaultOverloadPolicy(**settings)


def _deploy(policy, *, cluster_shards=0, decorate=None, name="shed"):
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=_N_DOCUMENTS, ttl_ms=3_600_000.0, seed=_SEED),
    )
    if decorate is not None:
        for index, document in enumerate(corpus):
            decorate(index, document)
    population = build_population(
        kernel, corpus, _N_USERS, personalized_fraction=0.0, seed=_SEED
    )
    if cluster_shards:
        cache = CacheCluster(
            kernel,
            cluster_shards,
            capacity_bytes=1 << 30,
            overload_policy=policy,
            name=name,
        )
    else:
        cache = DocumentCache(
            kernel,
            capacity_bytes=1 << 30,
            overload_policy=policy,
            name=name,
        )
    references = [
        population.reference(user, document)
        for user in range(_N_USERS)
        for document in range(_N_DOCUMENTS)
    ]
    return cache, references


class TestFlashCrowdShedding:
    def test_shed_reads_return_in_place_and_the_batch_finishes(self):
        cache, references = _deploy(_tight_policy())
        outcomes = cache.read_many(references)
        assert len(outcomes) == len(references) == 32
        served = [o for o in outcomes if isinstance(o, CacheReadOutcome)]
        shed = [o for o in outcomes if isinstance(o, OverloadShedError)]
        assert len(served) + len(shed) == 32
        # The 2 burst tokens admit the first arrivals; by the third
        # read the early fetches have burned tens of virtual
        # milliseconds of shared-enqueue sojourn, so the CoDel gate
        # sheds the rest of the crowd (overdraft headroom only helps
        # while sojourn stays under the threshold).
        assert len(served) == 2
        assert len(shed) == 30
        assert all(
            isinstance(o, CacheReadOutcome) for o in outcomes[:2]
        )
        stats = cache.overload_stats
        assert stats.admitted == 2
        assert stats.shed == stats.shed_bulk == 30
        assert stats.shed_critical == 0

    def test_shed_reads_do_no_cache_work(self):
        cache, references = _deploy(_tight_policy())
        cache.read_many(references)
        core_stats = cache.stats
        # Only the two admitted reads reached the pipeline at all.
        assert core_stats.hits + core_stats.misses == 2

    def test_critical_reads_are_never_shed(self):
        def pin_everything(index, document):
            document.reference.base.attach(AlwaysAvailableProperty())

        cache, references = _deploy(
            _tight_policy(), decorate=pin_everything
        )
        outcomes = cache.read_many(references)
        assert all(isinstance(o, CacheReadOutcome) for o in outcomes)
        stats = cache.overload_stats
        assert stats.admitted == 32
        assert stats.shed == 0

    def test_bulk_sheds_while_critical_sails_through(self):
        def pin_even_documents(index, document):
            if index % 2 == 0:
                document.reference.base.attach(AlwaysAvailableProperty())

        cache, references = _deploy(
            _tight_policy(), decorate=pin_even_documents
        )
        outcomes = cache.read_many(references)
        # references interleave documents 0..3 per user; even documents
        # are critical, odd ones bulk.
        for position, outcome in enumerate(outcomes):
            if position % _N_DOCUMENTS % 2 == 0:
                assert isinstance(outcome, CacheReadOutcome)
        stats = cache.overload_stats
        assert stats.shed_critical == 0
        assert stats.shed_bulk > 0

    def test_deadline_failures_also_return_in_place(self):
        policy = _tight_policy(
            deadlines=True,
            default_deadline_ms=1.0,
            shedding=False,
        )
        cache, references = _deploy(policy)
        outcomes = cache.read_many(references[:8])
        assert len(outcomes) == 8
        # The whole batch shares one enqueue instant; the first read's
        # fetch burns far more than the 1 ms allowance, so every later
        # read arrives already expired and degrades to a typed error.
        assert isinstance(outcomes[0], CacheReadOutcome)
        assert all(
            isinstance(o, DeadlineExceededError) for o in outcomes[1:]
        )
        stats = cache.overload_stats
        assert stats.deadline_exceeded == 7
        # The invariant the CI gate pins: no work ever *starts* past an
        # expired deadline.
        assert stats.deadline_violations == 0


class TestCacheClusterParity:
    def test_one_shard_cluster_matches_the_standalone_cache_exactly(self):
        # Admission state lives per shard, so the apples-to-apples
        # comparison is one shard: identical workload, identical
        # position-by-position outcome types and shed totals.
        solo_cache, solo_refs = _deploy(_tight_policy(), name="solo")
        cluster, cluster_refs = _deploy(
            _tight_policy(), cluster_shards=1, name="uno"
        )
        solo = solo_cache.read_many(solo_refs)
        sharded = cluster.read_many(cluster_refs)
        assert [type(o) for o in solo] == [type(o) for o in sharded]
        assert (
            solo_cache.overload_stats.shed
            == cluster.overload_stats.shed
        )

    def test_multi_shard_cluster_sheds_per_shard_with_typed_outcomes(self):
        cluster, references = _deploy(
            _tight_policy(), cluster_shards=2, name="duo"
        )
        outcomes = cluster.read_many(references)
        assert len(outcomes) == len(references)
        assert all(
            isinstance(o, (CacheReadOutcome, OverloadShedError))
            for o in outcomes
        )
        served = sum(isinstance(o, CacheReadOutcome) for o in outcomes)
        # Each shard brings its own token bucket, so a 2-shard cluster
        # admits more of the crowd than one cache would — but the gate
        # still sheds the bulk of it.
        assert 2 <= served <= 8
        assert cluster.overload_stats.shed == 32 - served

    def test_parity_holds_for_deadline_failures_too(self):
        policy_kwargs = dict(
            deadlines=True, default_deadline_ms=1.0, shedding=False
        )
        solo_cache, solo_refs = _deploy(
            _tight_policy(**policy_kwargs), name="solo-ddl"
        )
        cluster, cluster_refs = _deploy(
            _tight_policy(**policy_kwargs), cluster_shards=2, name="duo-ddl"
        )
        solo = solo_cache.read_many(solo_refs[:8])
        sharded = cluster.read_many(cluster_refs[:8])
        assert [type(o) for o in solo] == [type(o) for o in sharded]
