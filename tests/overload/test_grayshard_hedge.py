"""Hedged reads against a gray-failing shard.

Reuses the A19 bench's gray-shard harness at a reduced round count: a
two-shard cluster with one shard slowed 150 virtual ms per fetch (no
errors — the failure mode breakers cannot see), rotating invalidations
keeping a trickle of misses live on both shards, and paced reads.  The
contract under test: hedging launches and wins against the slow shard,
never serves wrong bytes, and never lets work start past an expired
deadline.
"""

from __future__ import annotations

import pytest

from repro.bench.overload import run_grayshard

_ROUNDS = 12


@pytest.fixture(scope="module")
def hedged():
    return run_grayshard(True, n_rounds=_ROUNDS)


@pytest.fixture(scope="module")
def unhedged():
    return run_grayshard(False, n_rounds=_ROUNDS)


class TestGrayShardHedging:
    def test_hedges_launch_and_win_against_the_gray_shard(self, hedged):
        assert hedged.hedges_launched > 0
        assert hedged.hedges_won > 0
        # Wins + losses never exceed launches (some hedges are still
        # in flight when the run ends).
        assert (
            hedged.hedges_won + hedged.hedges_lost
            <= hedged.hedges_launched
        )

    def test_hedging_cuts_the_in_window_tail(self, hedged, unhedged):
        assert unhedged.hedges_launched == 0
        assert hedged.window_p99_ms < unhedged.window_p99_ms
        # The ISSUE gate is >= 3x at full length; at reduced rounds we
        # still demand a clear multiple, not a rounding artefact.
        assert unhedged.window_p99_ms >= 2.0 * hedged.window_p99_ms

    def test_gray_slowdowns_actually_fired(self, hedged, unhedged):
        assert hedged.gray_slow_fetches > 0
        assert unhedged.gray_slow_fetches > 0

    def test_hedging_never_serves_wrong_bytes(self, hedged, unhedged):
        assert hedged.wrong_bytes_served == 0
        assert unhedged.wrong_bytes_served == 0

    def test_no_work_starts_past_an_expired_deadline(
        self, hedged, unhedged
    ):
        assert hedged.deadline_violations == 0
        assert unhedged.deadline_violations == 0

    def test_runs_are_deterministic(self, hedged):
        again = run_grayshard(True, n_rounds=_ROUNDS)
        assert again == hedged
