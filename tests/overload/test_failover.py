"""Placement failover: routing around an unhealthy shard, with canaries.

A hard-failing shard is marked unhealthy after a streak of consecutive
errors; the cluster then routes its keys to their ring-successor
replica, but lets every fourth read through as a canary so the health
tracker can accumulate the recovery evidence that restores the shard's
placement stickiness.
"""

from __future__ import annotations

from repro.cache.policies import DefaultOverloadPolicy
from repro.cluster import CacheCluster
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

_SEED = 43


def _deploy(name="fo"):
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=6, ttl_ms=3_600_000.0, seed=_SEED),
    )
    population = build_population(
        kernel, corpus, 4, personalized_fraction=0.0, seed=_SEED
    )
    cluster = CacheCluster(
        kernel,
        2,
        capacity_bytes=1 << 30,
        overload_policy=DefaultOverloadPolicy(hedging=False),
        name=name,
    )
    references = [
        population.reference(user, document)
        for user in range(4)
        for document in range(6)
    ]
    return cluster, references


def _reads_served(shard) -> int:
    return shard.stats.hits + shard.stats.misses


def _primary_of(cluster, reference):
    """The (health-tracker name, shard) a reference places on."""
    primary = cluster.shard_for(reference)
    name = next(
        name
        for name, shard in cluster.shards.items()
        if shard is primary
    )
    return name, primary


class TestPlacementFailover:
    def test_unhealthy_primary_routes_to_the_replica(self):
        cluster, references = _deploy()
        reference = references[0]
        primary_name, primary = _primary_of(cluster, reference)
        replica = next(
            shard
            for shard in cluster.shards.values()
            if shard is not primary
        )
        for _ in range(3):
            cluster.health.observe_error(primary_name)
        assert cluster.health.is_unhealthy(primary_name)

        before_primary = _reads_served(primary)
        before_replica = _reads_served(replica)
        cluster.read(reference)
        assert _reads_served(primary) == before_primary
        assert _reads_served(replica) == before_replica + 1
        assert cluster.overload_stats.failovers == 1

    def test_every_fourth_read_is_a_canary_on_the_primary(self):
        cluster, references = _deploy(name="canary")
        reference = references[0]
        primary_name, primary = _primary_of(cluster, reference)
        for _ in range(3):
            cluster.health.observe_error(primary_name)

        served_by_primary = []
        for _ in range(8):
            before = _reads_served(primary)
            cluster.read(reference)
            served_by_primary.append(_reads_served(primary) > before)
        # Probe counts run 1..8; every count divisible by 4 canaries
        # through to the primary, the rest divert.
        assert served_by_primary == [
            False, False, False, True, False, False, False, True
        ]

    def test_clean_canaries_restore_the_primary(self):
        cluster, references = _deploy(name="rec")
        reference = references[0]
        primary_name, primary = _primary_of(cluster, reference)
        for _ in range(3):
            cluster.health.observe_error(primary_name)
        cluster.read(reference)  # diverted; marks the failover
        assert cluster.overload_stats.failovers == 1

        # Recovery demands `recovery_successes` consecutive clean
        # reads; feed them directly (canary reads would take 12 rounds).
        for _ in range(3):
            cluster.health.observe_read(primary_name, 5.0)
        assert not cluster.health.is_unhealthy(primary_name)

        before = _reads_served(primary)
        cluster.read(reference)
        assert _reads_served(primary) == before + 1
        stats = cluster.overload_stats
        assert stats.recoveries == 1
        snapshot = cluster.health_snapshot()
        assert snapshot[primary_name]["state"] == "healthy"

    def test_single_shard_cluster_never_diverts(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        corpus = build_corpus(
            kernel, owner,
            CorpusSpec(n_documents=2, ttl_ms=3_600_000.0, seed=_SEED),
        )
        population = build_population(
            kernel, corpus, 1, personalized_fraction=0.0, seed=_SEED
        )
        cluster = CacheCluster(
            kernel,
            1,
            capacity_bytes=1 << 30,
            overload_policy=DefaultOverloadPolicy(hedging=False),
            name="solo",
        )
        reference = population.reference(0, 0)
        shard_name, shard = _primary_of(cluster, reference)
        for _ in range(3):
            cluster.health.observe_error(shard_name)
        before = _reads_served(shard)
        cluster.read(reference)  # nowhere else to go
        assert _reads_served(shard) == before + 1
