"""Overload tier: deadlines, admission control, hedged reads, health."""
