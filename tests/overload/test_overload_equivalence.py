"""An untriggered overload gate must be invisible.

The overload layer's opt-in contract has two halves.  ``None`` (no
policy) builds no gate at all — the pinned golden digests in
``tests/property/test_pipeline_equivalence.py`` cover that half.  This
file covers the sharper half: a *constructed* gate whose limits are too
permissive to ever fire must also change nothing — same stats, same
virtual clock, same fault-injection trace, byte for byte.  Deadline
checks, admission queries and priority classification all run on every
read; none of them may draw randomness, charge the clock, or reorder
work.
"""

from __future__ import annotations

import pytest

from repro.cache.policies import DefaultOverloadPolicy
from tests.property.test_pipeline_equivalence import (
    GOLDEN_DIGESTS,
    digest,
    run_seeded_workload,
)


def _permissive_policy():
    """Every mechanism armed, no limit reachable by a seeded workload."""
    return DefaultOverloadPolicy(
        default_deadline_ms=1e9,
        deadline_from_qos=False,
        admission_rate_per_s=1e9,
        admission_burst=1e6,
        queue_limit=1e6,
        sojourn_threshold_ms=1e9,
        hedging=False,
    )


class TestUntriggeredGateIsPure:
    @pytest.mark.parametrize("seed", [77, 101, 202])
    def test_chaos_runs_are_byte_identical_with_a_permissive_gate(
        self, seed
    ):
        bare = run_seeded_workload(seed, chaos=True)
        gated = run_seeded_workload(
            seed, chaos=True, overload_policy=_permissive_policy()
        )
        assert digest(gated) == digest(bare)
        assert gated["fault_trace"] == bare["fault_trace"]

    @pytest.mark.parametrize("seed", [77, 202])
    def test_healthy_runs_are_byte_identical_with_a_permissive_gate(
        self, seed
    ):
        bare = run_seeded_workload(seed)
        gated = run_seeded_workload(
            seed, overload_policy=_permissive_policy()
        )
        assert digest(gated) == digest(bare)

    def test_the_pinned_chaos_golden_survives_a_permissive_gate(self):
        snap = run_seeded_workload(
            7, chaos=True, overload_policy=_permissive_policy()
        )
        assert digest(snap) == GOLDEN_DIGESTS["chaos"]
