"""Tests for group document spaces, access control, watermarking,
serve-stale-on-error and the CLI."""

from __future__ import annotations

import pytest

from repro.__main__ import main as cli_main
from repro.cache.manager import DocumentCache
from repro.errors import PermissionDeniedError, RepositoryOfflineError
from repro.properties.access import AccessControlProperty, WatermarkProperty
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider
from repro.providers.web import WebOrigin, WebProvider


class TestGroupSpaces:
    @pytest.fixture
    def group_world(self, kernel, user, other_user):
        group = kernel.create_group("csl", [user, other_user])
        provider = MemoryProvider(kernel.ctx, b"group charter")
        base = kernel.create_document(group, provider, "charter")
        group_ref = kernel.space(group).add_reference(base)
        return group, group_ref

    def test_group_space_knows_members(self, kernel, user, other_user,
                                       group_world):
        group, _ = group_world
        space = kernel.space(group)
        assert space.is_group
        assert space.is_member(user)
        assert space.is_member(other_user)

    def test_nonmember_is_not_member(self, kernel, group_world):
        group, _ = group_world
        stranger = kernel.create_user("stranger")
        assert not kernel.space(group).is_member(stranger)

    def test_membership_mutation(self, kernel, user, group_world):
        group, _ = group_world
        space = kernel.space(group)
        newcomer = kernel.create_user("newcomer")
        space.add_member(newcomer)
        assert space.is_member(newcomer)
        space.remove_member(newcomer)
        assert not space.is_member(newcomer)

    def test_group_requires_existing_members(self, kernel):
        from repro.errors import SpaceNotFoundError
        from repro.ids import UserId

        with pytest.raises(SpaceNotFoundError):
            kernel.create_group("ghosts", [UserId("nobody")])

    def test_group_reference_shares_one_cache_entry(self, kernel, group_world):
        group, group_ref = group_world
        group_ref.attach(TranslationProperty())
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(group_ref)
        # Reads through the group reference hit regardless of which human
        # member is acting — the entry is keyed by the group principal.
        assert cache.read(group_ref).hit
        assert len(cache) == 1

    def test_individual_space_is_not_group(self, kernel, user):
        assert not kernel.space(user).is_group


class TestAccessControl:
    @pytest.fixture
    def guarded(self, kernel, user, other_user):
        provider = MemoryProvider(kernel.ctx, b"classified")
        base = kernel.create_document(user, provider, "secret")
        base.attach(AccessControlProperty(allowed={user}))
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        return mine, theirs

    def test_owner_reads_fine(self, kernel, guarded):
        mine, _ = guarded
        assert kernel.read(mine).content == b"classified"

    def test_outsider_read_denied(self, kernel, guarded):
        _, theirs = guarded
        with pytest.raises(PermissionDeniedError):
            kernel.read(theirs)

    def test_outsider_write_denied(self, kernel, guarded):
        _, theirs = guarded
        with pytest.raises(PermissionDeniedError):
            kernel.write(theirs, b"overwrite attempt")

    def test_denied_read_caches_nothing(self, kernel, guarded):
        _, theirs = guarded
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        with pytest.raises(PermissionDeniedError):
            cache.read(theirs)
        assert len(cache) == 0

    def test_denials_counted(self, kernel, guarded):
        mine, theirs = guarded
        guard = mine.base.find_property("access-control")
        for _ in range(2):
            with pytest.raises(PermissionDeniedError):
                kernel.read(theirs)
        assert guard.denials == 2

    def test_read_only_guard_allows_writes(self, kernel, user, other_user):
        provider = MemoryProvider(kernel.ctx, b"dropbox")
        base = kernel.create_document(user, provider, "inbox")
        base.attach(
            AccessControlProperty(allowed={user}, deny_writes=False)
        )
        theirs = kernel.space(other_user).add_reference(base)
        kernel.write(theirs, b"submission")  # writes allowed
        assert provider.peek() == b"submission"
        with pytest.raises(PermissionDeniedError):
            kernel.read(theirs)


class TestWatermark:
    @pytest.fixture
    def watermarked(self, kernel, user, other_user):
        provider = MemoryProvider(kernel.ctx, b"the report")
        base = kernel.create_document(user, provider, "report")
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        mine.attach(WatermarkProperty())
        theirs.attach(WatermarkProperty())
        return mine, theirs

    def test_each_user_sees_own_watermark(self, kernel, watermarked):
        mine, theirs = watermarked
        my_view = kernel.read(mine).content
        their_view = kernel.read(theirs).content
        assert str(mine.owner).encode() in my_view
        assert str(theirs.owner).encode() in their_view
        assert my_view != their_view

    def test_watermarked_versions_not_shared_in_store(self, kernel, watermarked):
        mine, theirs = watermarked
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(mine)
        cache.read(theirs)
        assert len(cache.store) == 2  # distinct bytes per user

    def test_adoption_refuses_watermarked_content(self, kernel, watermarked):
        mine, theirs = watermarked
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        outcome = cache.read(theirs)
        # Chain signatures embed the owner, so no adoption can occur.
        assert outcome.disposition == "miss"
        assert cache.stats.sibling_adoptions == 0


class TestServeStaleOnError:
    @pytest.fixture
    def flaky_world(self, kernel, user):
        origin = WebOrigin(kernel.ctx.clock, host="www")
        origin.publish("/page", b"fresh content", ttl_ms=1000.0)
        reference = kernel.import_document(
            user, WebProvider(kernel.ctx, origin, "/page"), "page"
        )
        return origin, reference

    def test_stale_served_when_repository_offline(self, kernel, flaky_world):
        origin, reference = flaky_world
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, serve_stale_on_error=True
        )
        cache.read(reference)
        kernel.ctx.clock.advance(2000.0)  # TTL expired
        kernel.ctx.latency.set_repository_offline("www")
        outcome = cache.read(reference)
        assert outcome.disposition == "stale-on-error"
        assert outcome.content == b"fresh content"
        assert cache.stats.stale_served_on_error == 1

    def test_error_propagates_without_flag(self, kernel, flaky_world):
        origin, reference = flaky_world
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(reference)
        kernel.ctx.clock.advance(2000.0)
        kernel.ctx.latency.set_repository_offline("www")
        with pytest.raises(RepositoryOfflineError):
            cache.read(reference)

    def test_error_propagates_on_cold_miss_even_with_flag(
        self, kernel, flaky_world
    ):
        origin, reference = flaky_world
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, serve_stale_on_error=True
        )
        kernel.ctx.latency.set_repository_offline("www")
        with pytest.raises(RepositoryOfflineError):
            cache.read(reference)  # nothing stale to fall back on

    def test_recovery_after_repository_returns(self, kernel, flaky_world):
        origin, reference = flaky_world
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, serve_stale_on_error=True
        )
        cache.read(reference)
        kernel.ctx.clock.advance(2000.0)
        kernel.ctx.latency.set_repository_offline("www")
        cache.read(reference)  # stale
        kernel.ctx.latency.set_repository_offline("www", False)
        origin.author_edit("/page", b"recovered content")
        outcome = cache.read(reference)
        assert outcome.disposition == "miss"
        assert outcome.content == b"recovered content"


class TestCLI:
    def test_info_command(self, capsys):
        assert cli_main(["info"]) == 0
        output = capsys.readouterr().out
        assert "HotOS 1999" in output

    def test_demo_command(self, capsys):
        assert cli_main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "eyal reads: The world of documents" in output
        assert "hit" in output

    def test_bench_single_experiment(self, capsys):
        assert cli_main(["bench", "a5"]) == 0
        assert "consistency class" in capsys.readouterr().out

    def test_bench_unknown_experiment(self, capsys):
        assert cli_main(["bench", "a99"]) == 2


class TestCLIRouting:
    def test_every_experiment_module_resolves_and_has_main(self):
        import importlib

        from repro.__main__ import _EXPERIMENT_MODULES

        assert set(_EXPERIMENT_MODULES) == {
            "table1", "a1", "a2", "a3", "a4", "a5",
            "a6", "a7", "a8", "a9", "a10", "a11",
            "a12", "faults", "a13", "recovery",
            "a14", "containment", "a15", "memo",
            "a16", "stampede", "a17", "cluster",
            "a18", "persistence", "a19", "overload",
            "a20", "scale",
        }
        for module_name in _EXPERIMENT_MODULES.values():
            module = importlib.import_module(module_name)
            assert callable(module.main), module_name

    def test_parser_builds(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(["bench", "a3"])
        assert args.experiment == "a3"
