"""Tests for the event vocabulary, dispatcher and timer service."""

from __future__ import annotations

import pytest

from repro.events.dispatcher import EventDispatcher
from repro.events.timers import TimerService
from repro.events.types import Event, EventType
from repro.ids import DocumentId, PropertyId, UserId
from repro.errors import ClockError
from repro.sim.clock import VirtualClock


def make_event(event_type=EventType.GET_INPUT_STREAM, **payload):
    return Event(
        type=event_type,
        document_id=DocumentId("d1"),
        user_id=UserId("u1"),
        payload=payload,
    )


class TestEventType:
    def test_stream_events_flagged(self):
        assert EventType.GET_INPUT_STREAM.is_stream_event
        assert EventType.GET_OUTPUT_STREAM.is_stream_event
        assert not EventType.TIMER.is_stream_event

    def test_forwarded_events_flagged(self):
        assert EventType.READ_FORWARDED.is_forwarded
        assert EventType.WRITE_FORWARDED.is_forwarded
        assert not EventType.GET_INPUT_STREAM.is_forwarded

    def test_describe_mentions_user_and_type(self):
        text = make_event().describe()
        assert "get-input-stream" in text
        assert "user:u1" in text

    def test_describe_system_event(self):
        event = Event(type=EventType.TIMER, document_id=DocumentId("d"))
        assert "<system>" in event.describe()


class TestDispatcher:
    def test_dispatch_invokes_registered_handler(self):
        dispatcher = EventDispatcher()
        seen = []
        dispatcher.register(
            PropertyId("p1"), EventType.GET_INPUT_STREAM, seen.append
        )
        event = make_event()
        dispatcher.dispatch(event)
        assert seen == [event]

    def test_dispatch_only_matching_type(self):
        dispatcher = EventDispatcher()
        seen = []
        dispatcher.register(PropertyId("p1"), EventType.TIMER, seen.append)
        dispatcher.dispatch(make_event())
        assert seen == []

    def test_handlers_run_in_registration_order(self):
        dispatcher = EventDispatcher()
        order = []
        for index in range(4):
            dispatcher.register(
                PropertyId(f"p{index}"),
                EventType.GET_INPUT_STREAM,
                lambda _e, i=index: order.append(i),
            )
        dispatcher.dispatch(make_event())
        assert order == [0, 1, 2, 3]

    def test_dispatch_collects_return_values(self):
        dispatcher = EventDispatcher()
        dispatcher.register(
            PropertyId("a"), EventType.GET_INPUT_STREAM, lambda e: "x"
        )
        dispatcher.register(
            PropertyId("b"), EventType.GET_INPUT_STREAM, lambda e: "y"
        )
        assert dispatcher.dispatch(make_event()) == ["x", "y"]

    def test_cancelled_registration_is_skipped(self):
        dispatcher = EventDispatcher()
        seen = []
        registration = dispatcher.register(
            PropertyId("p"), EventType.GET_INPUT_STREAM, seen.append
        )
        registration.cancel()
        dispatcher.dispatch(make_event())
        assert seen == []

    def test_unregister_property_removes_all(self):
        dispatcher = EventDispatcher()
        dispatcher.register(PropertyId("p"), EventType.TIMER, lambda e: None)
        dispatcher.register(
            PropertyId("p"), EventType.GET_INPUT_STREAM, lambda e: None
        )
        removed = dispatcher.unregister_property(PropertyId("p"))
        assert removed == 2
        assert not dispatcher.has_listener(EventType.TIMER)

    def test_reorder_changes_dispatch_order(self):
        dispatcher = EventDispatcher()
        order = []
        for name in ("a", "b", "c"):
            dispatcher.register(
                PropertyId(name),
                EventType.GET_INPUT_STREAM,
                lambda _e, n=name: order.append(n),
            )
        dispatcher.reorder([PropertyId("c"), PropertyId("a"), PropertyId("b")])
        dispatcher.dispatch(make_event())
        assert order == ["c", "a", "b"]

    def test_reorder_keeps_unlisted_properties_last(self):
        dispatcher = EventDispatcher()
        order = []
        for name in ("a", "infra"):
            dispatcher.register(
                PropertyId(name),
                EventType.GET_INPUT_STREAM,
                lambda _e, n=name: order.append(n),
            )
        dispatcher.reorder([PropertyId("a")])
        dispatcher.dispatch(make_event())
        assert order == ["a", "infra"]

    def test_registered_properties_lists_in_order(self):
        dispatcher = EventDispatcher()
        dispatcher.register(PropertyId("a"), EventType.TIMER, lambda e: None)
        dispatcher.register(PropertyId("b"), EventType.TIMER, lambda e: None)
        assert dispatcher.registered_properties(EventType.TIMER) == [
            PropertyId("a"),
            PropertyId("b"),
        ]

    def test_handler_registered_during_dispatch_not_invoked_now(self):
        dispatcher = EventDispatcher()
        seen = []

        def register_more(event):
            dispatcher.register(
                PropertyId("late"), EventType.GET_INPUT_STREAM, seen.append
            )

        dispatcher.register(
            PropertyId("first"), EventType.GET_INPUT_STREAM, register_more
        )
        dispatcher.dispatch(make_event())
        assert seen == []
        dispatcher.dispatch(make_event())
        assert len(seen) == 1


class TestTimerService:
    def test_once_fires_once(self):
        clock = VirtualClock()
        timers = TimerService(clock)
        fired = []
        timers.subscribe_once(
            PropertyId("p"), DocumentId("d"), 100.0, fired.append
        )
        clock.advance(250.0)
        assert len(fired) == 1
        assert fired[0].type is EventType.TIMER
        assert fired[0].at_ms == 100.0

    def test_periodic_fires_repeatedly(self):
        clock = VirtualClock()
        timers = TimerService(clock)
        fired = []
        timers.subscribe_periodic(
            PropertyId("p"), DocumentId("d"), 50.0, fired.append
        )
        clock.advance(175.0)
        assert [event.at_ms for event in fired] == [50.0, 100.0, 150.0]

    def test_cancel_stops_periodic(self):
        clock = VirtualClock()
        timers = TimerService(clock)
        fired = []
        subscription = timers.subscribe_periodic(
            PropertyId("p"), DocumentId("d"), 50.0, fired.append
        )
        clock.advance(60.0)
        subscription.cancel()
        clock.advance(500.0)
        assert len(fired) == 1
        assert subscription.fires == 1

    def test_live_subscriptions_excludes_cancelled(self):
        clock = VirtualClock()
        timers = TimerService(clock)
        keep = timers.subscribe_periodic(
            PropertyId("p"), DocumentId("d"), 10.0, lambda e: None
        )
        drop = timers.subscribe_periodic(
            PropertyId("q"), DocumentId("d"), 10.0, lambda e: None
        )
        drop.cancel()
        assert timers.live_subscriptions() == [keep]

    def test_nonpositive_period_raises(self):
        timers = TimerService(VirtualClock())
        with pytest.raises(ClockError):
            timers.subscribe_periodic(
                PropertyId("p"), DocumentId("d"), 0.0, lambda e: None
            )

    def test_timer_event_carries_property_id(self):
        clock = VirtualClock()
        timers = TimerService(clock)
        fired = []
        timers.subscribe_once(PropertyId("pp"), DocumentId("d"), 1.0, fired.append)
        clock.advance(2.0)
        assert fired[0].payload["property_id"] == PropertyId("pp")
