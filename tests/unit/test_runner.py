"""Tests for the trace runner."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.errors import WorkloadError
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.runner import TraceRunner
from repro.workload.trace import (
    TraceEvent,
    TraceEventKind,
    TraceSpec,
    generate_trace,
)
from repro.workload.users import build_population


@pytest.fixture
def world():
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=6, ttl_ms=3_600_000.0, seed=3),
    )
    population = build_population(
        kernel, corpus, n_users=2, personalized_fraction=0.0, seed=3
    )
    return kernel, corpus, population


def ev(kind, doc=0, user=0, detail=1, think=0.0):
    return TraceEvent(
        kind=kind, document_index=doc, user_index=user,
        think_time_ms=think, detail=detail,
    )


class TestValidation:
    def test_ragged_reference_matrix_rejected(self, world):
        kernel, corpus, population = world
        with pytest.raises(WorkloadError):
            TraceRunner(kernel, corpus, [population.references[0][:3]])

    def test_cache_count_must_match_users(self, world):
        kernel, corpus, population = world
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        with pytest.raises(WorkloadError):
            TraceRunner(
                kernel, corpus, population.references, caches=[cache]
            )


class TestEventExecution:
    def test_reads_counted_with_and_without_cache(self, world):
        kernel, corpus, population = world
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        runner = TraceRunner(
            kernel, corpus, population.references, caches=cache
        )
        report = runner.execute([
            ev(TraceEventKind.READ, doc=0),
            ev(TraceEventKind.READ, doc=0),
            ev(TraceEventKind.READ, doc=1, user=1),
        ])
        assert report.reads == 3
        assert report.hits == 1
        assert report.hit_ratio == pytest.approx(1 / 3)
        assert report.mean_read_latency_ms > 0

    def test_uncached_runner(self, world):
        kernel, corpus, population = world
        runner = TraceRunner(kernel, corpus, population.references)
        report = runner.execute([ev(TraceEventKind.READ)] * 3)
        assert report.reads == 3
        assert report.hits == 0

    def test_write_by_writer_principal(self, world):
        kernel, corpus, population = world
        runner = TraceRunner(kernel, corpus, population.references)
        before = corpus[0].provider.peek()
        report = runner.execute([ev(TraceEventKind.WRITE, detail=99)])
        assert report.writes == 1
        assert corpus[0].provider.peek() != before
        # The writer principal exists and holds a reference.
        assert runner._writer is not None

    def test_write_via_cache(self, world):
        kernel, corpus, population = world
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        runner = TraceRunner(
            kernel, corpus, population.references,
            caches=cache, writes_via_cache=True,
        )
        runner.execute([ev(TraceEventKind.WRITE, detail=5)])
        assert cache.stats.writes_through == 1

    def test_out_of_band_update_changes_bytes(self, world):
        kernel, corpus, population = world
        runner = TraceRunner(kernel, corpus, population.references)
        before = corpus[2].provider.peek()
        report = runner.execute(
            [ev(TraceEventKind.OUT_OF_BAND_UPDATE, doc=2, detail=7)]
        )
        assert report.out_of_band_updates == 1
        assert corpus[2].provider.peek() != before
        assert kernel.stats.writes == 0  # truly out of band

    def test_property_toggle(self, world):
        kernel, corpus, population = world
        runner = TraceRunner(kernel, corpus, population.references)
        reference = population.reference(0, 0)
        report = runner.execute([
            ev(TraceEventKind.PROPERTY_CHANGE),
            ev(TraceEventKind.PROPERTY_CHANGE),
        ])
        assert report.property_attaches == 1
        assert report.property_detaches == 1
        assert not reference.has_property("runner-translate")

    def test_reorder_needs_two_properties(self, world):
        kernel, corpus, population = world
        runner = TraceRunner(kernel, corpus, population.references)
        report = runner.execute([ev(TraceEventKind.PROPERTY_REORDER)])
        assert report.reorders == 0  # nothing to rotate
        runner.execute([
            ev(TraceEventKind.PROPERTY_CHANGE),  # attach translator
        ])
        from repro.properties.spellcheck import SpellingCorrectorProperty
        population.reference(0, 0).attach(SpellingCorrectorProperty())
        report = runner.execute([ev(TraceEventKind.PROPERTY_REORDER)])
        assert report.reorders == 1

    def test_external_changes_accumulate(self, world):
        kernel, corpus, population = world
        runner = TraceRunner(kernel, corpus, population.references)
        report = runner.execute([
            ev(TraceEventKind.EXTERNAL_CHANGE, doc=1),
            ev(TraceEventKind.EXTERNAL_CHANGE, doc=1),
            ev(TraceEventKind.EXTERNAL_CHANGE, doc=4),
        ])
        assert report.external_changes == 3
        assert runner.external_value(1) == 2
        assert runner.external_value(4) == 1
        assert runner.external_value(0) == 0
        assert report.externals == {1: 2, 4: 1}

    def test_think_time_advances_clock(self, world):
        kernel, corpus, population = world
        runner = TraceRunner(kernel, corpus, population.references)
        before = kernel.ctx.clock.now_ms
        runner.execute([ev(TraceEventKind.READ, think=500.0)])
        assert kernel.ctx.clock.now_ms >= before + 500.0


class TestEndToEnd:
    def test_generated_trace_executes_cleanly(self, world):
        kernel, corpus, population = world
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        runner = TraceRunner(
            kernel, corpus, population.references, caches=cache
        )
        spec = TraceSpec(
            n_events=300, n_documents=6, n_users=2,
            p_write=0.05, p_out_of_band=0.05,
            p_property_change=0.03, p_property_reorder=0.02,
            p_external_change=0.03, seed=11,
        )
        report = runner.execute(generate_trace(spec))
        assert report.events == 300
        assert report.reads > 200
        assert report.hit_ratio > 0.3
        # Reads through the cache always return current transformed
        # content; spot-check one document.
        outcome = cache.read(population.reference(0, 0))
        fresh = kernel.read(population.reference(0, 0)).content
        assert outcome.content == fresh

    def test_per_user_caches(self, world):
        kernel, corpus, population = world
        caches = [
            DocumentCache(kernel, capacity_bytes=1 << 20, name=f"u{i}")
            for i in range(2)
        ]
        runner = TraceRunner(
            kernel, corpus, population.references, caches=caches
        )
        runner.execute([
            ev(TraceEventKind.READ, doc=0, user=0),
            ev(TraceEventKind.READ, doc=0, user=1),
        ])
        assert caches[0].stats.misses == 1
        assert caches[1].stats.misses == 1
