"""Tests for the cacheability indicator and its aggregation rule."""

from __future__ import annotations

from repro.cache.cacheability import Cacheability


class TestOrdering:
    def test_restrictiveness_order(self):
        assert Cacheability.UNCACHEABLE < Cacheability.CACHEABLE_WITH_EVENTS
        assert Cacheability.CACHEABLE_WITH_EVENTS < Cacheability.UNRESTRICTED

    def test_comparison_with_non_cacheability(self):
        result = Cacheability.UNCACHEABLE.__lt__(42)
        assert result is NotImplemented


class TestCombine:
    def test_combine_picks_more_restrictive(self):
        assert (
            Cacheability.UNRESTRICTED.combine(Cacheability.UNCACHEABLE)
            is Cacheability.UNCACHEABLE
        )
        assert (
            Cacheability.CACHEABLE_WITH_EVENTS.combine(Cacheability.UNRESTRICTED)
            is Cacheability.CACHEABLE_WITH_EVENTS
        )

    def test_combine_is_commutative(self):
        for a in Cacheability:
            for b in Cacheability:
                assert a.combine(b) is b.combine(a)

    def test_combine_identity(self):
        for level in Cacheability:
            assert level.combine(Cacheability.UNRESTRICTED) is level


class TestAggregate:
    def test_empty_votes_are_unrestricted(self):
        assert Cacheability.aggregate([]) is Cacheability.UNRESTRICTED

    def test_single_vote(self):
        assert (
            Cacheability.aggregate([Cacheability.UNCACHEABLE])
            is Cacheability.UNCACHEABLE
        )

    def test_most_restrictive_wins(self):
        votes = [
            Cacheability.UNRESTRICTED,
            Cacheability.CACHEABLE_WITH_EVENTS,
            Cacheability.UNRESTRICTED,
        ]
        assert Cacheability.aggregate(votes) is Cacheability.CACHEABLE_WITH_EVENTS

    def test_uncacheable_dominates(self):
        votes = [
            Cacheability.UNRESTRICTED,
            Cacheability.UNCACHEABLE,
            Cacheability.CACHEABLE_WITH_EVENTS,
        ]
        assert Cacheability.aggregate(votes) is Cacheability.UNCACHEABLE

    def test_aggregate_accepts_generators(self):
        votes = (Cacheability.UNRESTRICTED for _ in range(3))
        assert Cacheability.aggregate(votes) is Cacheability.UNRESTRICTED


class TestFlags:
    def test_allows_caching(self):
        assert not Cacheability.UNCACHEABLE.allows_caching
        assert Cacheability.CACHEABLE_WITH_EVENTS.allows_caching
        assert Cacheability.UNRESTRICTED.allows_caching

    def test_requires_event_forwarding(self):
        assert Cacheability.CACHEABLE_WITH_EVENTS.requires_event_forwarding
        assert not Cacheability.UNRESTRICTED.requires_event_forwarding
        assert not Cacheability.UNCACHEABLE.requires_event_forwarding
