"""Tests for content signatures and the reference-counted store."""

from __future__ import annotations

import hashlib

import pytest

from repro.content.signature import ContentSignature, sign
from repro.content.store import ContentStore
from repro.errors import CacheEntryNotFoundError


class TestSignature:
    def test_sign_is_md5(self):
        assert sign(b"abc").digest == hashlib.md5(b"abc").hexdigest()

    def test_equal_bytes_equal_signature(self):
        assert sign(b"hello") == sign(b"hello")

    def test_different_bytes_different_signature(self):
        assert sign(b"hello") != sign(b"hellO")

    def test_short_prefix(self):
        signature = sign(b"x")
        assert signature.short == signature.digest[:8]

    def test_str_prefix(self):
        assert str(sign(b"x")).startswith("md5:")


class TestContentStore:
    def test_put_and_get(self):
        store = ContentStore()
        signature = store.put(b"payload")
        assert store.get(signature) == b"payload"

    def test_put_duplicate_deduplicates(self):
        store = ContentStore()
        first = store.put(b"shared")
        second = store.put(b"shared")
        assert first == second
        assert len(store) == 1
        assert store.refcount(first) == 2

    def test_physical_vs_logical_bytes(self):
        store = ContentStore()
        store.put(b"x" * 100)
        store.put(b"x" * 100)
        store.put(b"y" * 50)
        assert store.physical_bytes == 150
        assert store.logical_bytes == 250

    def test_release_decrements_and_evicts_at_zero(self):
        store = ContentStore()
        signature = store.put(b"data")
        store.put(b"data")
        store.release(signature)
        assert signature in store
        store.release(signature)
        assert signature not in store
        assert store.physical_bytes == 0

    def test_adopt_adds_reference(self):
        store = ContentStore()
        signature = store.put(b"data")
        store.adopt(signature)
        assert store.refcount(signature) == 2

    def test_adopt_missing_raises(self):
        with pytest.raises(CacheEntryNotFoundError):
            ContentStore().adopt(ContentSignature("0" * 32))

    def test_get_missing_raises(self):
        with pytest.raises(CacheEntryNotFoundError):
            ContentStore().get(sign(b"never stored"))

    def test_release_missing_raises(self):
        with pytest.raises(CacheEntryNotFoundError):
            ContentStore().release(sign(b"never stored"))

    def test_size_of(self):
        store = ContentStore()
        signature = store.put(b"12345")
        assert store.size_of(signature) == 5

    def test_refcount_of_missing_is_zero(self):
        assert ContentStore().refcount(sign(b"missing")) == 0

    def test_contents_are_copied_defensively(self):
        store = ContentStore()
        data = bytearray(b"mutable")
        signature = store.put(bytes(data))
        data[0] = ord("X")
        assert store.get(signature) == b"mutable"
