"""Tests for the invalidation vocabulary and cache entries."""

from __future__ import annotations

from repro.cache.consistency import (
    Invalidation,
    InvalidationClass,
    InvalidationReason,
)
from repro.cache.cacheability import Cacheability
from repro.cache.entry import CacheEntry, EntryKey
from repro.content.signature import sign
from repro.ids import DocumentId, UserId


class TestReasonClassMapping:
    def test_class_one_reasons(self):
        for reason in (
            InvalidationReason.SOURCE_UPDATED_IN_BAND,
            InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND,
            InvalidationReason.OPENED_FOR_WRITE,
        ):
            assert reason.invalidation_class is InvalidationClass.SOURCE_MODIFIED

    def test_class_two_reasons(self):
        for reason in (
            InvalidationReason.PROPERTY_ADDED,
            InvalidationReason.PROPERTY_REMOVED,
            InvalidationReason.PROPERTY_MODIFIED,
        ):
            assert (
                reason.invalidation_class
                is InvalidationClass.PROPERTIES_CHANGED
            )

    def test_class_three_reason(self):
        assert (
            InvalidationReason.PROPERTY_REORDERED.invalidation_class
            is InvalidationClass.PROPERTY_ORDER_CHANGED
        )

    def test_class_four_reason(self):
        assert (
            InvalidationReason.EXTERNAL_CHANGED.invalidation_class
            is InvalidationClass.EXTERNAL_DEPENDENCY_CHANGED
        )

    def test_bookkeeping_reasons(self):
        for reason in (
            InvalidationReason.EVICTED,
            InvalidationReason.EXPLICIT,
            InvalidationReason.LOCAL_WRITE,
            InvalidationReason.VERIFIER_FAILED,
        ):
            assert reason.invalidation_class is InvalidationClass.BOOKKEEPING


class TestInvalidationMatching:
    def test_user_scoped_matches_only_that_user(self):
        invalidation = Invalidation(
            reason=InvalidationReason.PROPERTY_ADDED,
            document_id=DocumentId("d"),
            user_id=UserId("alice"),
        )
        assert invalidation.matches(DocumentId("d"), UserId("alice"))
        assert not invalidation.matches(DocumentId("d"), UserId("bob"))

    def test_unscoped_matches_all_users(self):
        invalidation = Invalidation(
            reason=InvalidationReason.SOURCE_UPDATED_IN_BAND,
            document_id=DocumentId("d"),
        )
        assert invalidation.matches(DocumentId("d"), UserId("anyone"))

    def test_other_document_never_matches(self):
        invalidation = Invalidation(
            reason=InvalidationReason.SOURCE_UPDATED_IN_BAND,
            document_id=DocumentId("d"),
        )
        assert not invalidation.matches(DocumentId("other"), UserId("u"))


def make_entry() -> CacheEntry:
    return CacheEntry(
        key=EntryKey(DocumentId("d"), UserId("u")),
        signature=sign(b"content"),
        size=7,
        cacheability=Cacheability.UNRESTRICTED,
        verifiers=[],
        replacement_cost_ms=1.0,
        chain_signature=("t1",),
        reference_id=None,
        created_at_ms=0.0,
        last_access_ms=0.0,
    )


class TestCacheEntry:
    def test_fresh_entry_is_valid(self):
        assert make_entry().valid

    def test_touch_updates_access(self):
        entry = make_entry()
        entry.touch(42.0)
        assert entry.last_access_ms == 42.0
        assert entry.access_count == 2

    def test_first_invalidation_wins(self):
        entry = make_entry()
        first = Invalidation(
            InvalidationReason.PROPERTY_ADDED, DocumentId("d")
        )
        second = Invalidation(
            InvalidationReason.EVICTED, DocumentId("d")
        )
        entry.invalidate(first)
        entry.invalidate(second)
        assert entry.invalidation is first
        assert not entry.valid

    def test_dirty_flag(self):
        entry = make_entry()
        assert not entry.is_dirty
        entry.dirty_content = b"pending"
        assert entry.is_dirty

    def test_key_accessors(self):
        entry = make_entry()
        assert entry.document_id == DocumentId("d")
        assert entry.user_id == UserId("u")
