"""Tests for the simulation context helpers and assorted small surfaces."""

from __future__ import annotations

import pytest

from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext
from repro.streams.base import BytesInputStream
from repro.streams.transforms import BufferedTransformInputStream


class TestSimContext:
    def test_charge_hop_advances_clock_and_returns_cost(self):
        ctx = SimContext()
        cost = ctx.charge_hop("local", 1024)
        assert cost > 0
        assert ctx.now_ms == pytest.approx(cost)

    def test_charge_repository(self):
        ctx = SimContext()
        cost = ctx.charge_repository("nfs", 2048)
        assert cost == pytest.approx(
            ctx.latency.repository_cost_ms("nfs", 2048)
        )
        assert ctx.clock.total_charged_ms == pytest.approx(cost)

    def test_charge_arbitrary(self):
        ctx = SimContext()
        assert ctx.charge(2.5) == 2.5
        assert ctx.now_ms == 2.5

    def test_independent_contexts_do_not_interact(self):
        first = SimContext()
        second = SimContext()
        first.charge(100.0)
        assert second.now_ms == 0.0
        # id generators are independent too
        assert first.ids.document().value == second.ids.document().value

    def test_rng_is_seeded(self):
        assert SimContext().rng.random() == SimContext().rng.random()


class TestProviderCounters:
    def test_fetch_and_store_counters(self):
        ctx = SimContext()
        provider = MemoryProvider(ctx, b"x")
        provider.fetch()
        provider.fetch()
        provider.store(b"y")
        assert provider.fetch_count == 2
        assert provider.store_count == 1

    def test_out_of_band_not_counted_as_store(self):
        ctx = SimContext()
        provider = MemoryProvider(ctx, b"x")
        provider.mutate_out_of_band(b"y")
        assert provider.store_count == 0


class TestStreamEdges:
    def test_buffered_transform_close_before_read(self):
        inner = BytesInputStream(b"data")
        stream = BufferedTransformInputStream(inner, lambda d: d)
        stream.close()
        assert inner.closed

    def test_buffered_transform_lazy(self):
        calls = []

        def transform(data: bytes) -> bytes:
            calls.append(data)
            return data

        stream = BufferedTransformInputStream(
            BytesInputStream(b"data"), transform
        )
        assert calls == []           # nothing until first read
        stream.read(1)
        stream.read(1)
        assert calls == [b"data"]    # transformed exactly once
