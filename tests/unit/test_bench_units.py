"""Unit tests for the bench modules' derived metrics and records."""

from __future__ import annotations

import pytest

from repro.bench.chains import ChainLengthResult, _make_chain
from repro.bench.notifier_verifier import CONFIGURATIONS
from repro.bench.placement import PlacementResult
from repro.bench.sharing import SharingResult
from repro.bench.table1 import Table1Row


class TestTable1Row:
    def make(self, no_cache=100.0, miss=102.0, hit=1.0):
        return Table1Row(
            label="x", repository="www", size_bytes=1000,
            no_cache_ms=no_cache, miss_ms=miss, hit_ms=hit,
        )

    def test_hit_speedup(self):
        assert self.make().hit_speedup == pytest.approx(100.0)

    def test_zero_hit_latency_is_infinite_speedup(self):
        assert self.make(hit=0.0).hit_speedup == float("inf")

    def test_miss_overhead(self):
        row = self.make()
        assert row.miss_overhead_ms == pytest.approx(2.0)
        assert row.miss_overhead_fraction == pytest.approx(0.02)

    def test_zero_no_cache_overhead_fraction(self):
        row = self.make(no_cache=0.0, miss=0.0)
        assert row.miss_overhead_fraction == 0.0


class TestSharingResult:
    def test_dedup_factor(self):
        result = SharingResult(
            personalized_fraction=0.0, n_entries=10,
            distinct_contents=2, logical_bytes=1000, physical_bytes=250,
        )
        assert result.dedup_factor == pytest.approx(4.0)
        assert result.bytes_saved == 750

    def test_empty_store_dedup_is_one(self):
        result = SharingResult(
            personalized_fraction=0.0, n_entries=0,
            distinct_contents=0, logical_bytes=0, physical_bytes=0,
        )
        assert result.dedup_factor == 1.0


class TestChainHelpers:
    def test_make_chain_alternates_and_names_uniquely(self):
        chain = _make_chain(4)
        assert len(chain) == 4
        names = [prop.name for prop in chain]
        assert len(set(names)) == 4
        assert names[0].startswith("spell")
        assert names[1].startswith("translate")

    def test_empty_chain(self):
        assert _make_chain(0) == []

    def test_speedup_property(self):
        result = ChainLengthResult(
            chain_length=2, uncached_ms=50.0, hit_ms=0.5,
            replacement_cost_ms=10.0,
        )
        assert result.speedup == pytest.approx(100.0)


class TestConfigurations:
    def test_a1_covers_the_four_quadrants(self):
        combos = {(n, v) for _, n, v in CONFIGURATIONS}
        assert combos == {
            (False, False), (True, False), (False, True), (True, True),
        }


class TestPlacementResult:
    def test_fields_roundtrip(self):
        result = PlacementResult(
            deployment="both", mean_latency_ms=1.0,
            combined_hit_ratio=0.5, l1_hit_ratio=0.4, l2_hit_ratio=0.1,
            kernel_reads=10, bytes_cached=1024,
        )
        assert result.deployment == "both"
        assert result.bytes_cached == 1024
