"""Tests for the mail substrate and its providers."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.cache.verifiers import Verdict
from repro.errors import ContentUnavailableError, ProviderError
from repro.providers.mail import (
    MailboxDigestProvider,
    MailServer,
    MessageProvider,
)


@pytest.fixture
def server(kernel):
    server = MailServer(kernel.ctx.clock)
    server.deliver("inbox", "karin@parc", "caching draft", b"see attached")
    server.deliver("inbox", "doug@parc", "re: caching draft", b"comments inline")
    return server


class TestMailServer:
    def test_deliver_assigns_uids(self, server):
        uids = [m.uid for m in server.messages("inbox")]
        assert uids == [1, 2]

    def test_message_lookup(self, server):
        message = server.message("inbox", 2)
        assert message.sender == "doug@parc"

    def test_missing_message_raises(self, server):
        with pytest.raises(ContentUnavailableError):
            server.message("inbox", 99)

    def test_count(self, server):
        assert server.count("inbox") == 2
        assert server.count("empty") == 0

    def test_digest_lists_messages(self, server):
        digest = server.digest("inbox").decode()
        assert "caching draft" in digest
        assert "doug@parc" in digest

    def test_messages_timestamped_by_clock(self, kernel):
        server = MailServer(kernel.ctx.clock)
        kernel.ctx.clock.advance(123.0)
        message = server.deliver("inbox", "a@b", "s", b"")
        assert message.received_ms == 123.0


class TestMessageProvider:
    def test_serves_rendered_message(self, kernel, server):
        provider = MessageProvider(kernel.ctx, server, "inbox", 1)
        content = provider.fetch().content
        assert b"From: karin@parc" in content
        assert b"see attached" in content

    def test_messages_are_immutable(self, kernel, server):
        provider = MessageProvider(kernel.ctx, server, "inbox", 1)
        with pytest.raises(ProviderError):
            provider.store(b"tampered")

    def test_verifier_is_always_valid(self, kernel, server):
        provider = MessageProvider(kernel.ctx, server, "inbox", 1)
        verifier = provider.make_verifier()
        server.deliver("inbox", "x@y", "new mail", b"")
        assert verifier.run(0.0, b"").verdict is Verdict.VALID

    def test_cached_message_never_invalidated_by_new_mail(
        self, kernel, user, server
    ):
        provider = MessageProvider(kernel.ctx, server, "inbox", 1)
        reference = kernel.import_document(user, provider, "msg1")
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(reference)
        server.deliver("inbox", "x@y", "more", b"")
        assert cache.read(reference).hit


class TestMailboxDigestProvider:
    def test_serves_digest(self, kernel, server):
        provider = MailboxDigestProvider(kernel.ctx, server, "inbox")
        assert b"Mailbox: inbox" in provider.fetch().content

    def test_digest_not_writable(self, kernel, server):
        provider = MailboxDigestProvider(kernel.ctx, server, "inbox")
        with pytest.raises(ProviderError):
            provider.store(b"x")

    def test_new_mail_invalidates_cached_digest(self, kernel, user, server):
        provider = MailboxDigestProvider(kernel.ctx, server, "inbox")
        reference = kernel.import_document(user, provider, "inbox-view")
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        first = cache.read(reference)
        assert b"re: caching draft" in first.content
        assert cache.read(reference).hit
        server.deliver("inbox", "eyal@rice", "camera ready", b"done!")
        outcome = cache.read(reference)
        assert not outcome.hit        # verifier caught the append
        assert b"camera ready" in outcome.content
