"""Unit tests for the transform memoization plane.

Covers the chain-fingerprint protocol (all four §3 invalidation
classes), the bounded refcount-aware memo table, the admission fast
path (``put_signed``), the instrumentation fast path, and the memo
stage end-to-end: a second user's miss becomes a signature adoption
with no provider fetch and no chain execution.
"""

from __future__ import annotations

import pytest

from repro.cache.instrumentation import InstrumentationBus, StageEvent
from repro.cache.manager import DocumentCache
from repro.cache.memo import (
    ChainFingerprint,
    MemoRecord,
    MemoStats,
    TransformMemo,
    fingerprint_reference,
)
from repro.cache.policies import (
    DefaultContainmentPolicy,
    DefaultMemoPolicy,
    DefaultRecoveryPolicy,
)
from repro.content.signature import sign
from repro.content.store import ContentStore
from repro.errors import CacheError
from repro.placeless.kernel import PlacelessKernel
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.translate import TranslationProperty
from repro.properties.uncacheable import UncacheableProperty
from repro.providers.memory import MemoryProvider
from repro.streams.chain import property_site


def build_world(content=b"hello world of documents", n_users=2):
    """A kernel, one document, and one plain reference per user."""
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    base = kernel.create_document(
        owner, MemoryProvider(kernel.ctx, content), "doc"
    )
    references = []
    for index in range(n_users):
        user = kernel.create_user(f"user-{index}")
        references.append(kernel.space(user).add_reference(base))
    return kernel, base, references


def memo_cache(kernel, **kwargs):
    kwargs.setdefault("memo_policy", DefaultMemoPolicy())
    return DocumentCache(kernel, capacity_bytes=1 << 20, **kwargs)


class TestChainFingerprint:
    """The fingerprint protocol across the §3 invalidation classes."""

    def test_identical_chains_fingerprint_identically(self):
        _, _, (ref_a, ref_b) = build_world()
        ref_a.attach(TranslationProperty())
        ref_b.attach(TranslationProperty())
        assert fingerprint_reference(ref_a) == fingerprint_reference(ref_b)

    def test_add_and_delete_change_fingerprint(self):
        # Class (b): membership changes change the key.
        _, _, (reference, _) = build_world()
        plain = fingerprint_reference(reference)
        prop = reference.attach(TranslationProperty())
        attached = fingerprint_reference(reference)
        assert attached != plain
        reference.detach(prop)
        assert fingerprint_reference(reference) == plain

    def test_modify_changes_fingerprint(self):
        # Class (b): an upgraded property is different code.
        _, _, (reference, _) = build_world()
        prop = reference.attach(TranslationProperty())
        before = fingerprint_reference(reference)
        prop.upgrade()
        assert fingerprint_reference(reference) != before

    def test_reorder_changes_fingerprint(self):
        # Class (c): same member set, different order, different key.
        _, _, (reference, _) = build_world()
        first = reference.attach(SpellingCorrectorProperty())
        second = reference.attach(TranslationProperty())
        before = fingerprint_reference(reference)
        reference.reorder([second.property_id, first.property_id])
        assert fingerprint_reference(reference) != before

    def test_configuration_feeds_fingerprint(self):
        # Same class, same name, same version — only the configuration
        # hook differs, and that alone must change the fingerprint.
        class Configured(TranslationProperty):
            def __init__(self, lang):
                super().__init__()
                self.lang = lang

            def fingerprint_config(self):
                return f"lang={self.lang}"

        assert Configured("de").fingerprint() != Configured("es").fingerprint()

    def test_compose_is_position_sensitive(self):
        assert ChainFingerprint.compose(["a", "b"]) != (
            ChainFingerprint.compose(["b", "a"])
        )
        assert ChainFingerprint.compose([]) == ChainFingerprint.compose([])

    def test_base_chain_participates(self):
        # The read path runs base properties then reference properties;
        # the fingerprint must cover both.
        _, base, (reference, _) = build_world()
        before = fingerprint_reference(reference)
        base.attach(TranslationProperty())
        assert fingerprint_reference(reference) != before


class TestTransformMemo:
    """The bounded LRU table, in isolation."""

    @staticmethod
    def _record(tag: str, fingerprint: str = "chain") -> MemoRecord:
        return MemoRecord(
            source_signature=sign(f"src-{tag}".encode()),
            fingerprint=ChainFingerprint.compose([fingerprint]),
            output_signature=sign(f"out-{tag}".encode()),
        )

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TransformMemo(0)

    def test_lookup_roundtrip_and_miss(self):
        memo = TransformMemo(4)
        record = self._record("a")
        assert memo.record(record) == 0
        assert memo.lookup(*record.key) is record
        assert memo.lookup(sign(b"other"), record.fingerprint) is None

    def test_lru_eviction_prefers_stale_records(self):
        memo = TransformMemo(2)
        a, b, c = (self._record(tag) for tag in "abc")
        memo.record(a)
        memo.record(b)
        memo.lookup(*a.key)  # freshen a; b is now the LRU victim
        assert memo.record(c) == 1
        assert memo.evictions == 1
        assert memo.lookup(*b.key) is None
        assert memo.lookup(*a.key) is a

    def test_discard_and_purge_all(self):
        memo = TransformMemo(4)
        a, b = self._record("a"), self._record("b")
        memo.record(a)
        memo.record(b)
        memo.discard(a)
        memo.discard(a)  # idempotent
        assert len(memo) == 1
        assert memo.purge_all() == 1
        assert len(memo) == 0

    def test_purge_document_is_selective(self):
        memo = TransformMemo(4)
        from repro.ids import DocumentId

        doc_a, doc_b = DocumentId("doc-a"), DocumentId("doc-b")
        a, b = self._record("a"), self._record("b")
        a.document_id, b.document_id = doc_a, doc_b
        memo.record(a)
        memo.record(b)
        assert memo.purge_document(doc_a) == 1
        assert memo.lookup(*b.key) is b


class TestPutSigned:
    """Satellite 1: the admission path signs once."""

    def test_matches_put_semantics(self):
        store = ContentStore()
        content = b"signed once"
        signature = sign(content)
        assert store.put_signed(content, signature) == store.put(content)
        assert store.refcount(signature) == 2
        assert store.get(signature) == content

    def test_mismatched_signature_asserts(self):
        store = ContentStore()
        with pytest.raises(AssertionError):
            store.put_signed(b"content", sign(b"different"))


class TestInstrumentationFastPath:
    """Satellite 2: unobserved buses skip event construction."""

    def test_has_subscribers_tracks_subscriptions(self):
        bus = InstrumentationBus()
        assert not bus.has_subscribers and not bus
        sink = []
        bus.subscribe(sink.append)
        assert bus.has_subscribers and bus
        bus.unsubscribe(sink.append)
        assert not bus.has_subscribers

    def test_stage_event_is_slotted_and_frozen(self):
        event = StageEvent(stage="read", outcome="hit")
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            event.stage = "write"

    def test_core_emit_skips_unobserved_bus(self):
        kernel, _, (reference, _) = build_world()
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            instrumentation=InstrumentationBus(),
        )
        # Strip the projections the manager subscribed so nothing
        # observes the bus; derived stats must then stay untouched.
        bus = cache.instrumentation
        for subscriber in list(bus._subscribers):
            bus.unsubscribe(subscriber)
        outcome = cache.read(reference)
        assert outcome.disposition == "miss"
        assert cache.stats.misses == 0  # the emit never happened


class TestMemoEndToEnd:
    """The memo stage inside the full read pipeline."""

    def test_second_user_miss_is_memoized(self):
        kernel, base, (ref_a, ref_b) = build_world()
        base.attach(TranslationProperty())
        cache = memo_cache(kernel)
        reads_before = kernel.stats.reads
        first = cache.read(ref_a)
        second = cache.read(ref_b)
        assert first.disposition == "miss"
        assert second.disposition == "miss-memoized"
        assert second.content == first.content
        assert kernel.stats.reads - reads_before == 1
        assert cache.memo_stats.chain_executions_avoided == 1
        # Both entries share the one stored copy of the output bytes.
        entry = cache.entry_for(ref_b)
        assert cache.store.refcount(entry.signature) == 2
        # A memoized serve still counts as a miss in the legacy stats.
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_memoized_read_is_cheaper_than_chain_execution(self):
        kernel, base, (ref_a, ref_b) = build_world()
        base.attach(TranslationProperty())
        cache = memo_cache(kernel)
        first = cache.read(ref_a)
        second = cache.read(ref_b)
        assert second.elapsed_ms < first.elapsed_ms

    def test_off_by_default(self):
        kernel, base, (ref_a, ref_b) = build_world()
        base.attach(TranslationProperty())
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        assert cache.memo is None and cache.memo_stats is None
        cache.read(ref_a)
        assert cache.read(ref_b).disposition == "miss"

    def test_source_change_never_matches(self):
        # Class (a): the consult probes the *current* source signature.
        kernel, base, (ref_a, ref_b) = build_world()
        base.attach(TranslationProperty())
        cache = memo_cache(kernel)
        cache.read(ref_a)
        base.provider.mutate_out_of_band(b"rewritten out of band")
        outcome = cache.read(ref_b)
        assert outcome.disposition == "miss"
        assert cache.memo_stats.adoptions == 0

    def test_property_add_changes_key(self):
        # Class (b): the second user's extra property misses the memo.
        kernel, base, (ref_a, ref_b) = build_world()
        base.attach(TranslationProperty())
        cache = memo_cache(kernel)
        cache.read(ref_a)
        ref_b.attach(SpellingCorrectorProperty())
        assert cache.read(ref_b).disposition == "miss"
        assert cache.memo_stats.adoptions == 0
        assert len(cache.memo) == 2  # both chains recorded separately

    def test_reorder_changes_key(self):
        # Class (c): permuted chains must not share memo records.
        kernel, base, references = build_world(n_users=2)
        cache = memo_cache(kernel)
        spell_a = references[0].attach(SpellingCorrectorProperty())
        references[0].attach(TranslationProperty())
        spell_b = references[1].attach(SpellingCorrectorProperty())
        trans_b = references[1].attach(TranslationProperty())
        references[1].reorder([trans_b.property_id, spell_b.property_id])
        cache.read(references[0])
        assert cache.read(references[1]).disposition == "miss"
        assert cache.memo_stats.adoptions == 0
        assert spell_a is not spell_b

    def test_uncacheable_chain_is_negative_cached(self):
        # Class (d): UNCACHEABLE votes record the negative sentinel and
        # later consults skip the serve machinery without adopting.
        kernel, base, (ref_a, ref_b) = build_world()
        base.attach(UncacheableProperty())
        cache = memo_cache(kernel)
        assert cache.read(ref_a).disposition == "uncacheable"
        assert cache.memo_stats.negative_records == 1
        assert cache.read(ref_b).disposition == "uncacheable"
        stats = cache.memo_stats
        assert stats.negative_hits == 1
        assert stats.adoptions == 0

    def test_verifier_gated_record_reverified_on_serve(self):
        kernel, base, (ref_a, ref_b) = build_world()
        cache = memo_cache(kernel)
        cache.read(ref_a)
        executions_before = cache.stats.verifier_executions
        assert cache.read(ref_b).disposition == "miss-memoized"
        assert cache.stats.verifier_executions > executions_before

    def test_verify_on_serve_false_bypasses(self):
        kernel, base, (ref_a, ref_b) = build_world()
        cache = memo_cache(
            kernel, memo_policy=DefaultMemoPolicy(verify_on_serve=False)
        )
        cache.read(ref_a)
        assert cache.read(ref_b).disposition == "miss"
        assert cache.memo_stats.verifier_bypasses == 1

    def test_failing_verifier_drops_record(self):
        # Same bytes re-stored: source signature unchanged, but the
        # modification-time verifier sees a new generation and votes
        # INVALID — the memo must prune instead of serving.
        kernel, base, (ref_a, ref_b) = build_world()
        cache = memo_cache(kernel)
        cache.read(ref_a)
        base.provider.mutate_out_of_band(base.provider.peek())
        assert cache.read(ref_b).disposition == "miss"
        assert cache.memo_stats.verifier_drops == 1

    def test_dead_output_bytes_prune_record(self):
        kernel, base, (ref_a, ref_b) = build_world()
        cache = memo_cache(kernel, use_verifiers=False)
        cache.read(ref_a)
        cache.clear()  # last entry reference gone -> bytes leave store
        assert cache.read(ref_b).disposition == "miss"
        assert cache.memo_stats.dead_drops == 1
        assert len(cache.memo) == 1  # the refetch re-recorded

    def test_lru_bound_emits_evictions(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        user = kernel.create_user("reader")
        refs = []
        for index in range(3):
            b = kernel.create_document(
                owner,
                MemoryProvider(kernel.ctx, f"doc {index}".encode()),
                f"doc-{index}",
            )
            refs.append(kernel.space(user).add_reference(b))
        cache = memo_cache(kernel, memo_policy=DefaultMemoPolicy(capacity=1))
        for reference in refs:
            cache.read(reference)
        assert len(cache.memo) == 1
        assert cache.memo_stats.evictions == 2

    def test_crash_purges_memo(self):
        kernel, base, (ref_a, ref_b) = build_world()
        cache = memo_cache(kernel)
        cache.read(ref_a)
        assert len(cache.memo) == 1
        cache.crash()
        assert len(cache.memo) == 0
        assert cache.memo_stats.purged == 1
        assert cache.read(ref_b).disposition == "miss"

    def test_resync_purges_memo(self):
        kernel, base, (ref_a, _) = build_world()
        cache = memo_cache(
            kernel, recovery_policy=DefaultRecoveryPolicy()
        )
        cache.read(ref_a)
        assert len(cache.memo) == 1
        cache.resync()
        assert len(cache.memo) == 0
        assert cache.memo_stats.purged == 1

    def test_open_breaker_bypasses_memo(self):
        kernel, base, (ref_a, ref_b) = build_world()
        prop = base.attach(TranslationProperty())
        cache = memo_cache(
            kernel,
            containment_policy=DefaultContainmentPolicy(failure_threshold=1),
        )
        cache.read(ref_a)
        guard = cache.containment
        breaker = guard.wrappers.get(
            (base.document_id, property_site(prop))
        )
        breaker.record_failure(kernel.ctx.clock.now_ms)
        assert cache.read(ref_b).disposition != "miss-memoized"
        assert cache.memo_stats.contained_bypasses >= 1

    def test_memoized_entry_behaves_like_filled_entry(self):
        # The adopted entry must survive later hits and invalidations.
        kernel, base, (ref_a, ref_b) = build_world()
        base.attach(TranslationProperty())
        cache = memo_cache(kernel)
        cache.read(ref_a)
        cache.read(ref_b)
        assert cache.read(ref_b).disposition in ("hit", "revalidated")
        dropped = cache.invalidate_document(base.document_id)
        assert dropped == 2

    def test_policy_validation(self):
        with pytest.raises(CacheError):
            DefaultMemoPolicy(capacity=0)
        with pytest.raises(CacheError):
            DefaultMemoPolicy(probe_cost_ms=-1.0)

    def test_stats_projection_counts(self):
        stats = MemoStats()
        assert stats.consults == 0
        stats.adoptions, stats.misses, stats.negative_hits = 3, 2, 1
        assert stats.consults == 6
        assert stats.chain_executions_avoided == 3
