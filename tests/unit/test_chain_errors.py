"""Error-path tests for the stream-chain builders and firewall streams.

The builders must fail *closed*: a wrapper that raises while the chain
is being constructed closes every stream built so far before the error
propagates, so no half-wrapped stream leaks to the caller.  The firewall
streams must report a mid-stream failure exactly once and a clean end of
stream exactly once.
"""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, StreamError
from repro.streams.base import BytesInputStream, BytesOutputStream
from repro.streams.chain import (
    ByteCapInputStream,
    CorruptingInputStream,
    CorruptingOutputStream,
    FirewallInputStream,
    FirewallOutputStream,
    build_input_chain,
    build_output_chain,
)


class RecordingInputStream(BytesInputStream):
    """Counts closes so leak checks can assert exactly one."""

    def __init__(self, data=b""):
        super().__init__(data)
        self.close_calls = 0

    def _on_close(self):
        self.close_calls += 1
        super()._on_close()


class ExplodingInputStream(BytesInputStream):
    """Raises on the first read (mid-stream failure)."""

    def _read_chunk(self, size):
        raise StreamError("exploding stream")


class TestBuildersFailClosed:
    def test_input_chain_closes_partial_chain_on_wrapper_raise(self):
        source = RecordingInputStream(b"data")
        built = []

        def good(stream):
            wrapper = FirewallInputStream(
                stream, on_failure=lambda e: None, on_success=lambda: None
            )
            built.append(wrapper)
            return wrapper

        def bad(stream):
            raise RuntimeError("wrapper construction failed")

        with pytest.raises(RuntimeError):
            build_input_chain(source, [good, bad])
        assert built[0].closed
        assert source.closed
        assert source.close_calls == 1

    def test_output_chain_closes_partial_chain_on_wrapper_raise(self):
        sink = BytesOutputStream()
        built = []

        def good(stream):
            wrapper = FirewallOutputStream(
                stream, on_failure=lambda e: None, on_success=lambda: None
            )
            built.append(wrapper)
            return wrapper

        def bad(stream):
            raise RuntimeError("wrapper construction failed")

        # Output chains wrap in reverse: `bad` (first in execution
        # order) is applied last, after `good` already wrapped the sink.
        with pytest.raises(RuntimeError):
            build_output_chain(sink, [bad, good])
        assert built[0].closed
        assert sink.closed

    def test_raise_in_first_wrapper_closes_the_source(self):
        source = RecordingInputStream(b"data")
        with pytest.raises(RuntimeError):
            build_input_chain(
                source, [lambda s: (_ for _ in ()).throw(RuntimeError())]
            )
        assert source.close_calls == 1

    def test_successful_chain_is_not_closed(self):
        source = RecordingInputStream(b"data")
        stream = build_input_chain(source, [lambda s: s, lambda s: s])
        assert not stream.closed
        assert stream.read(-1) == b"data"


class TestFirewallInputStream:
    def test_reports_success_once_at_clean_eof(self):
        events = []
        stream = FirewallInputStream(
            BytesInputStream(b"abc"),
            on_failure=lambda e: events.append(("fail", e)),
            on_success=lambda: events.append(("ok",)),
        )
        assert stream.read(-1) == b"abc"
        assert stream.read(4) == b""  # EOF again: no double report
        assert events == [("ok",)]

    def test_reports_failure_once_and_reraises(self):
        events = []
        stream = FirewallInputStream(
            ExplodingInputStream(b""),
            on_failure=lambda e: events.append(type(e).__name__),
            on_success=lambda: events.append("ok"),
        )
        with pytest.raises(StreamError):
            stream.read(10)
        with pytest.raises(StreamError):
            stream.read(10)
        assert events == ["StreamError"]

    def test_close_propagates_to_inner(self):
        inner = RecordingInputStream(b"abc")
        FirewallInputStream(
            inner, on_failure=lambda e: None, on_success=lambda: None
        ).close()
        assert inner.close_calls == 1


class TestFirewallOutputStream:
    def test_reports_success_at_clean_close(self):
        events = []
        inner = BytesOutputStream()
        stream = FirewallOutputStream(
            inner,
            on_failure=lambda e: events.append("fail"),
            on_success=lambda: events.append("ok"),
        )
        stream.write(b"abc")
        assert events == []
        stream.close()
        assert events == ["ok"]
        assert inner.getvalue() == b"abc"

    def test_reports_failure_once_on_write_raise(self):
        events = []
        stream = FirewallOutputStream(
            CorruptingOutputStream(BytesOutputStream(), "site"),
            on_failure=lambda e: events.append(type(e).__name__),
            on_success=lambda: events.append("ok"),
        )
        with pytest.raises(StreamError):
            stream.write(b"abc")
        stream.close()  # a failed stream never reports success
        assert events == ["StreamError"]


class TestBudgetAndCorruptionStreams:
    def test_byte_cap_raises_past_the_budget(self):
        stream = ByteCapInputStream(BytesInputStream(b"x" * 10), 4, "site")
        assert stream.read(4) == b"xxxx"
        with pytest.raises(BudgetExceededError):
            stream.read(4)

    def test_corrupting_input_garbles_then_fails_mid_stream(self):
        stream = CorruptingInputStream(BytesInputStream(b"abc"), "site")
        garbled = stream.read(3)
        assert garbled != b"abc" and len(garbled) == 3
        with pytest.raises(StreamError):
            stream.read(3)

    def test_corrupting_output_rejects_the_first_write(self):
        inner = BytesOutputStream()
        stream = CorruptingOutputStream(inner, "site")
        with pytest.raises(StreamError):
            stream.write(b"abc")
        assert inner.getvalue() == b""  # nothing corrupt reached the sink
