"""Tests for the DocumentCache manager — hits, misses, consistency,
capacity, write modes and event forwarding."""

from __future__ import annotations

import pytest

from repro.cache.cacheability import Cacheability
from repro.cache.consistency import InvalidationReason
from repro.cache.manager import DocumentCache, WriteMode
from repro.cache.notifiers import InvalidationBus
from repro.cache.replacement import LRUPolicy
from repro.cache.verifiers import ThresholdVerifier, Verifier, VerifierResult, Verdict
from repro.errors import CacheCapacityError
from repro.events.types import EventType
from repro.placeless.properties import ActiveProperty
from repro.properties.audit import ReadAuditTrailProperty
from repro.properties.translate import TranslationProperty
from repro.properties.uncacheable import UncacheableProperty
from repro.properties.versioning import VersioningProperty
from repro.providers.live import LiveFeedProvider
from repro.providers.memory import MemoryProvider


@pytest.fixture
def world(kernel, user, other_user):
    provider = MemoryProvider(kernel.ctx, b"hello world")
    base = kernel.create_document(user, provider, "doc")
    mine = kernel.space(user).add_reference(base)
    theirs = kernel.space(other_user).add_reference(base)
    cache = DocumentCache(kernel, capacity_bytes=1 << 20, track_staleness=True)
    return kernel, base, mine, theirs, provider, cache


class TestHitMiss:
    def test_first_read_misses_then_hits(self, world):
        *_, cache = world
        kernel, base, mine, theirs, provider, cache = world
        first = cache.read(mine)
        assert not first.hit and first.disposition == "miss"
        second = cache.read(mine)
        assert second.hit and second.disposition == "hit"
        assert second.content == b"hello world"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hit_is_much_faster(self, world):
        kernel, base, mine, _, _, cache = world
        miss = cache.read(mine)
        hit = cache.read(mine)
        assert hit.elapsed_ms < miss.elapsed_ms / 5

    def test_per_user_entries(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        outcome = cache.read(theirs)
        assert not outcome.hit  # different user: separate entry
        assert len(cache) == 2

    def test_identical_content_shares_bytes(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        cache.read(theirs)
        assert len(cache.store) == 1
        assert cache.store.logical_bytes == 2 * len(b"hello world")
        assert cache.store.physical_bytes == len(b"hello world")

    def test_transformed_content_not_shared(self, world):
        kernel, base, mine, theirs, _, cache = world
        mine.attach(TranslationProperty())
        cache.read(mine)
        cache.read(theirs)
        assert len(cache.store) == 2

    def test_entry_metadata(self, world):
        kernel, base, mine, _, _, cache = world
        cache.read(mine)
        entry = cache.entry_for(mine)
        assert entry is not None
        assert entry.size == len(b"hello world")
        assert entry.replacement_cost_ms > 0
        assert entry.valid

    def test_contains_and_len(self, world):
        kernel, base, mine, _, _, cache = world
        assert len(cache) == 0
        cache.read(mine)
        assert cache._key(mine) in cache


class TestVerifiers:
    def test_out_of_band_change_caught_on_hit(self, world):
        kernel, base, mine, _, provider, cache = world
        cache.read(mine)
        provider.mutate_out_of_band(b"changed behind placeless")
        outcome = cache.read(mine)
        assert not outcome.hit
        assert outcome.content == b"changed behind placeless"
        assert cache.stats.verifier_invalidations == 1
        assert (
            cache.stats.invalidations[
                InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND
            ]
            == 1
        )

    def test_verifier_cost_charged_on_hit(self, world):
        kernel, base, mine, _, _, cache = world
        cache.read(mine)
        before = cache.stats.verifier_cost_ms
        cache.read(mine)
        assert cache.stats.verifier_cost_ms > before
        assert cache.stats.verifier_executions >= 1

    def test_use_verifiers_false_skips(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"v1")
        mine = kernel.import_document(user, provider, "doc")
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, use_verifiers=False
        )
        cache.read(mine)
        provider.mutate_out_of_band(b"v2")
        outcome = cache.read(mine)
        assert outcome.hit  # stale, but verifiers are off
        assert outcome.content == b"v1"

    def test_raising_verifier_treated_as_invalid(self, kernel, user):
        class ExplodingVerifier(Verifier):
            def verify(self, now_ms, content):
                raise RuntimeError("boom")

        class ExplodingProperty(ActiveProperty):
            def events_of_interest(self):
                return {EventType.GET_INPUT_STREAM}

            def make_verifier(self):
                return ExplodingVerifier()

        provider = MemoryProvider(kernel.ctx, b"x")
        mine = kernel.import_document(user, provider, "doc")
        mine.attach(ExplodingProperty("exploder"))
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(mine)
        outcome = cache.read(mine)
        assert not outcome.hit
        assert (
            cache.stats.invalidations[InvalidationReason.VERIFIER_FAILED] == 1
        )

    def test_threshold_verifier_revalidates_in_place(self, kernel, user):
        quote = [100.0]

        class QuoteProperty(ActiveProperty):
            transforms_reads = False

            def events_of_interest(self):
                return {EventType.GET_INPUT_STREAM}

            def make_verifier(self):
                return ThresholdVerifier(
                    observe=lambda: quote[0],
                    baseline=quote[0],
                    threshold_fraction=0.05,
                    patcher=lambda content, value: f"quote:{value}".encode(),
                )

        provider = MemoryProvider(kernel.ctx, b"quote:100.0")
        mine = kernel.import_document(user, provider, "portfolio")
        mine.attach(QuoteProperty("quotes"))
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(mine)
        quote[0] = 150.0
        outcome = cache.read(mine)
        assert outcome.hit
        assert outcome.disposition == "revalidated"
        assert outcome.content == b"quote:150.0"
        assert cache.stats.verifier_revalidations == 1
        # The patched bytes are what subsequent hits serve.
        assert cache.read(mine).content == b"quote:150.0"


class TestCacheability:
    def test_live_feed_never_cached(self, kernel, user):
        mine = kernel.import_document(
            user, LiveFeedProvider(kernel.ctx), "video"
        )
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        first = cache.read(mine)
        second = cache.read(mine)
        assert first.disposition == "uncacheable"
        assert not second.hit
        assert first.content != second.content
        assert len(cache) == 0
        assert cache.stats.uncacheable_reads == 2

    def test_uncacheable_property_blocks_caching(self, world):
        kernel, base, mine, _, _, cache = world
        mine.attach(UncacheableProperty())
        assert cache.read(mine).disposition == "uncacheable"
        assert len(cache) == 0

    def test_event_forwarding_on_hits(self, world):
        kernel, base, mine, _, _, cache = world
        audit = ReadAuditTrailProperty()
        mine.attach(audit)
        cache.read(mine)   # miss: audit sees the real read
        cache.read(mine)   # hit: forwarded event
        cache.read(mine)   # hit: forwarded event
        assert audit.reads_observed == 3
        assert audit.cache_served_reads == 2
        assert cache.stats.forwarded_reads == 2

    def test_oversize_content_not_cached(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"x" * 2000)
        mine = kernel.import_document(user, provider, "big")
        cache = DocumentCache(kernel, capacity_bytes=1000)
        outcome = cache.read(mine)
        assert outcome.disposition == "miss-oversize"
        assert len(cache) == 0

    def test_zero_capacity_rejected(self, kernel):
        with pytest.raises(CacheCapacityError):
            DocumentCache(kernel, capacity_bytes=0)


class TestNotifierIntegration:
    def test_other_users_write_invalidates_entry(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        cache.write(theirs, b"their version")
        outcome = cache.read(mine)
        assert not outcome.hit
        assert outcome.content == b"their version"

    def test_personal_property_add_invalidates_only_me(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        cache.read(theirs)
        mine.attach(TranslationProperty())
        assert not cache.read(mine).hit
        assert cache.read(theirs).hit

    def test_universal_property_add_invalidates_everyone(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        cache.read(theirs)
        base.attach(TranslationProperty())
        assert not cache.read(mine).hit
        assert not cache.read(theirs).hit

    def test_property_upgrade_invalidates(self, world):
        kernel, base, mine, _, _, cache = world
        translator = TranslationProperty()
        mine.attach(translator)
        cache.read(mine)
        translator.upgrade()
        assert not cache.read(mine).hit
        assert (
            cache.stats.invalidations[InvalidationReason.PROPERTY_MODIFIED]
            >= 1
        )

    def test_reorder_invalidates(self, world):
        kernel, base, mine, _, _, cache = world
        a = TranslationProperty(name="t1")
        b = TranslationProperty(name="t2")
        mine.attach(a)
        mine.attach(b)
        cache.read(mine)
        notifier_ids = [
            p.property_id for p in mine.active_properties()
            if p not in (a, b)
        ]
        mine.reorder([b.property_id, a.property_id] + notifier_ids)
        assert not cache.read(mine).hit

    def test_install_notifiers_false_misses_changes(self, kernel, user, other_user):
        provider = MemoryProvider(kernel.ctx, b"v1")
        base = kernel.create_document(user, provider, "doc")
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            install_notifiers=False, use_verifiers=False,
        )
        cache.read(mine)
        kernel.write(theirs, b"v2")
        outcome = cache.read(mine)
        assert outcome.hit          # nothing told the cache
        assert outcome.content == b"v1"  # stale!


class TestCapacity:
    def test_evicts_to_fit(self, kernel, user):
        cache = DocumentCache(
            kernel, capacity_bytes=250, policy=LRUPolicy()
        )
        refs = []
        for index in range(5):
            provider = MemoryProvider(kernel.ctx, bytes([65 + index]) * 100)
            refs.append(kernel.import_document(user, provider, f"d{index}"))
        for ref in refs:
            cache.read(ref)
        assert cache.used_bytes <= 250
        assert cache.stats.evictions >= 3
        assert (
            cache.stats.invalidations[InvalidationReason.EVICTED]
            == cache.stats.evictions
        )

    def test_lru_keeps_recent(self, kernel, user):
        cache = DocumentCache(kernel, capacity_bytes=250, policy=LRUPolicy())
        refs = []
        for index in range(3):
            provider = MemoryProvider(kernel.ctx, bytes([65 + index]) * 100)
            refs.append(kernel.import_document(user, provider, f"d{index}"))
        cache.read(refs[0])
        cache.read(refs[1])
        cache.read(refs[0])   # refresh 0
        cache.read(refs[2])   # evicts 1
        assert cache.entry_for(refs[0]) is not None
        assert cache.entry_for(refs[1]) is None


class TestWrites:
    def test_write_through_reaches_repository(self, world):
        kernel, base, mine, _, provider, cache = world
        cache.write(mine, b"new content")
        assert provider.peek() == b"new content"
        assert cache.stats.writes_through == 1

    def test_write_through_invalidates_own_entry(self, world):
        kernel, base, mine, _, _, cache = world
        cache.read(mine)
        cache.write(mine, b"new content")
        outcome = cache.read(mine)
        assert not outcome.hit
        assert outcome.content == b"new content"

    def test_write_back_defers_store(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"old")
        mine = kernel.import_document(user, provider, "doc")
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, write_mode=WriteMode.WRITE_BACK
        )
        cache.write(mine, b"buffered")
        assert provider.peek() == b"old"
        assert cache.dirty_count == 1
        assert cache.stats.writes_backed == 1

    def test_write_back_flush_pushes_through(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"old")
        mine = kernel.import_document(user, provider, "doc")
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, write_mode=WriteMode.WRITE_BACK
        )
        cache.write(mine, b"buffered")
        assert cache.flush(mine)
        assert provider.peek() == b"buffered"
        assert cache.dirty_count == 0
        assert not cache.flush(mine)  # nothing left

    def test_write_back_read_forces_flush(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"old")
        mine = kernel.import_document(user, provider, "doc")
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, write_mode=WriteMode.WRITE_BACK
        )
        cache.write(mine, b"buffered")
        outcome = cache.read(mine)
        assert outcome.content == b"buffered"
        assert provider.peek() == b"buffered"

    def test_write_back_cheaper_than_write_through(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"old")
        mine = kernel.import_document(user, provider, "doc")
        through = DocumentCache(kernel, capacity_bytes=1 << 20)
        back = DocumentCache(
            kernel, capacity_bytes=1 << 20, write_mode=WriteMode.WRITE_BACK,
            name="wb",
        )
        cost_through = through.write(mine, b"data")
        cost_back = back.write(mine, b"data")
        assert cost_back < cost_through

    def test_write_back_forwards_events_to_interested(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"v0")
        base = kernel.create_document(user, provider, "doc")
        mine = kernel.space(user).add_reference(base)
        versioning = VersioningProperty()
        base.attach(versioning)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, write_mode=WriteMode.WRITE_BACK
        )
        cache.write(mine, b"v1")
        # The versioning property registered for WRITE_FORWARDED, so it
        # observed the buffered write even though nothing was stored yet.
        assert cache.stats.forwarded_writes == 1
        assert versioning.version_count >= 1

    def test_flush_all(self, kernel, user):
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, write_mode=WriteMode.WRITE_BACK
        )
        refs = [
            kernel.import_document(
                user, MemoryProvider(kernel.ctx, b"x"), f"d{i}"
            )
            for i in range(3)
        ]
        for index, ref in enumerate(refs):
            cache.write(ref, f"content-{index}".encode())
        assert cache.flush_all() == 3
        assert all(
            ref.base.provider.peek() == f"content-{i}".encode()
            for i, ref in enumerate(refs)
        )


class TestExplicitManagement:
    def test_invalidate_document(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        cache.read(theirs)
        dropped = cache.invalidate_document(base.document_id)
        assert dropped == 2
        assert len(cache) == 0

    def test_invalidate_document_for_one_user(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        cache.read(theirs)
        dropped = cache.invalidate_document(base.document_id, mine.owner)
        assert dropped == 1
        assert cache.entry_for(theirs) is not None

    def test_clear(self, world):
        kernel, base, mine, theirs, _, cache = world
        cache.read(mine)
        cache.read(theirs)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_stats_hit_ratio(self, world):
        kernel, base, mine, _, _, cache = world
        cache.read(mine)
        cache.read(mine)
        cache.read(mine)
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)
        assert cache.stats.lookups == 3
