"""Tests for document collections and collection-aware prefetch."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.errors import PlacelessError
from repro.placeless.collection import DocumentCollection
from repro.placeless.properties import StaticProperty
from repro.properties.collection import (
    CollectionPrefetchProperty,
    attach_collection_prefetch,
)
from repro.providers.memory import MemoryProvider


@pytest.fixture
def project(kernel, user):
    refs = [
        kernel.import_document(
            user, MemoryProvider(kernel.ctx, f"chapter {i}".encode()), f"ch{i}"
        )
        for i in range(4)
    ]
    collection = DocumentCollection("book", user)
    for ref in refs:
        collection.add(ref)
    return refs, collection


class TestDocumentCollection:
    def test_membership(self, project):
        refs, collection = project
        assert len(collection) == 4
        assert refs[0] in collection
        assert list(collection) == refs

    def test_add_is_idempotent(self, project):
        refs, collection = project
        collection.add(refs[0])
        assert len(collection) == 4

    def test_foreign_reference_rejected(self, kernel, user, other_user, project):
        _, collection = project
        foreign = kernel.import_document(
            other_user, MemoryProvider(kernel.ctx, b"x"), "foreign"
        )
        with pytest.raises(PlacelessError):
            collection.add(foreign)

    def test_remove(self, project):
        refs, collection = project
        collection.remove(refs[1])
        assert refs[1] not in collection
        collection.remove(refs[1])  # no-op

    def test_siblings_of(self, project):
        refs, collection = project
        siblings = collection.siblings_of(refs[2])
        assert refs[2] not in siblings
        assert len(siblings) == 3

    def test_document_ids(self, project):
        refs, collection = project
        assert collection.document_ids() == {
            ref.base.document_id for ref in refs
        }

    def test_from_property(self, kernel, user, project):
        refs, _ = project
        refs[0].attach(StaticProperty("budget related"))
        refs[2].attach(StaticProperty("budget related"))
        derived = DocumentCollection.from_property(
            "budget", kernel.space(user), "budget related"
        )
        assert set(derived.members()) == {refs[0], refs[2]}


class TestPrefetch:
    def test_reading_one_member_prefetches_siblings(self, kernel, project):
        refs, collection = project
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        attach_collection_prefetch(collection, cache)
        cache.read(refs[0])
        # The demand read filled one entry; the drain filled the rest.
        assert len(cache) == 4
        assert cache.stats.prefetch_fills == 3

    def test_prefetched_siblings_hit(self, kernel, project):
        refs, collection = project
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        attach_collection_prefetch(collection, cache)
        cache.read(refs[0])
        outcome = cache.read(refs[1])
        assert outcome.hit
        assert cache.stats.prefetched_hits == 1

    def test_prefetch_does_not_inflate_trigger_latency(self, kernel, project):
        refs, collection = project
        plain_cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        baseline = plain_cache.read(refs[0]).elapsed_ms

        refs2 = [
            kernel.import_document(
                refs[0].owner,
                MemoryProvider(kernel.ctx, f"c{i}".encode()), f"x{i}",
            )
            for i in range(4)
        ]
        collection2 = DocumentCollection("book2", refs[0].owner)
        for ref in refs2:
            collection2.add(ref)
        cache = DocumentCache(kernel, capacity_bytes=1 << 20, name="pf")
        attach_collection_prefetch(collection2, cache)
        triggered = cache.read(refs2[0]).elapsed_ms
        # The prefetch property adds its tiny execution cost but no
        # sibling-fill latency to the triggering read.
        assert triggered < baseline * 1.5

    def test_max_siblings_bounds_speculation(self, kernel, project):
        refs, collection = project
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        for ref in collection:
            ref.attach(
                CollectionPrefetchProperty(collection, cache, max_siblings=1)
            )
        cache.read(refs[0])
        assert cache.stats.prefetch_fills == 1

    def test_already_cached_members_not_requeued(self, kernel, project):
        refs, collection = project
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        attach_collection_prefetch(collection, cache)
        cache.read(refs[0])
        fills_before = cache.stats.prefetch_fills
        cache.read(refs[1])
        assert cache.stats.prefetch_fills == fills_before

    def test_prefetch_requests_counted(self, kernel, project):
        refs, collection = project
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        attach_collection_prefetch(collection, cache)
        cache.read(refs[0])
        assert cache.stats.prefetch_requests == 3
