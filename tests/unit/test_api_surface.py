"""API-surface tests: the public interface stays importable and documented."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_walk_modules())


class TestTopLevelApi:
    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_is_semver_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestModuleHygiene:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_classes_and_functions_documented(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            obj = getattr(module, name, None)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_every_package_reexports_something(self):
        packages = [
            "repro.sim", "repro.events", "repro.streams", "repro.content",
            "repro.providers", "repro.placeless", "repro.properties",
            "repro.cache", "repro.nfs", "repro.workload",
        ]
        for package_name in packages:
            package = importlib.import_module(package_name)
            assert getattr(package, "__all__", []), package_name
