"""Tests for every verifier class."""

from __future__ import annotations

import pytest

from repro.cache.verifiers import (
    AlwaysInvalidVerifier,
    AlwaysValidVerifier,
    CompositeVerifier,
    ModificationTimeVerifier,
    PredicateVerifier,
    ThresholdVerifier,
    TTLVerifier,
    Verdict,
)
from repro.errors import VerifierError


class TestTrivialVerifiers:
    def test_always_valid(self):
        result = AlwaysValidVerifier().run(0.0, b"x")
        assert result.verdict is Verdict.VALID
        assert result.serves_from_cache

    def test_always_invalid(self):
        result = AlwaysInvalidVerifier().run(0.0, b"x")
        assert result.verdict is Verdict.INVALID
        assert not result.serves_from_cache

    def test_execution_count_tracks_runs(self):
        verifier = AlwaysValidVerifier()
        for _ in range(3):
            verifier.run(0.0, b"")
        assert verifier.executions == 3


class TestTTLVerifier:
    def test_valid_before_expiry(self):
        verifier = TTLVerifier(issued_ms=100.0, ttl_ms=50.0)
        assert verifier.run(149.9, b"").verdict is Verdict.VALID

    def test_invalid_at_expiry_boundary(self):
        verifier = TTLVerifier(issued_ms=100.0, ttl_ms=50.0)
        assert verifier.run(150.0, b"").verdict is Verdict.INVALID

    def test_zero_ttl_immediately_invalid(self):
        verifier = TTLVerifier(issued_ms=0.0, ttl_ms=0.0)
        assert verifier.run(0.0, b"").verdict is Verdict.INVALID

    def test_negative_ttl_raises(self):
        with pytest.raises(VerifierError):
            TTLVerifier(issued_ms=0.0, ttl_ms=-1.0)

    def test_expires_property(self):
        assert TTLVerifier(10.0, 5.0).expires_ms == 15.0

    def test_invalidation_label_is_source(self):
        assert TTLVerifier(0.0, 1.0).invalidation_label == "source"


class TestModificationTimeVerifier:
    def test_valid_while_mtime_unchanged(self):
        mtime = [42.0]
        verifier = ModificationTimeVerifier(lambda: mtime[0], 42.0)
        assert verifier.run(0.0, b"").verdict is Verdict.VALID

    def test_invalid_after_mtime_change(self):
        mtime = [42.0]
        verifier = ModificationTimeVerifier(lambda: mtime[0], 42.0)
        mtime[0] = 43.0
        assert verifier.run(0.0, b"").verdict is Verdict.INVALID

    def test_invalidation_label_is_source(self):
        verifier = ModificationTimeVerifier(lambda: 0.0, 0.0)
        assert verifier.invalidation_label == "source"


class TestPredicateVerifier:
    def test_predicate_receives_time_and_content(self):
        seen = []
        verifier = PredicateVerifier(
            lambda now, content: bool(seen.append((now, content))) or True
        )
        verifier.run(5.0, b"payload")
        assert seen == [(5.0, b"payload")]

    def test_false_predicate_invalidates(self):
        verifier = PredicateVerifier(lambda now, content: False)
        assert verifier.run(0.0, b"").verdict is Verdict.INVALID


class TestCompositeVerifier:
    def test_all_valid_is_valid(self):
        composite = CompositeVerifier(
            [AlwaysValidVerifier(), AlwaysValidVerifier()]
        )
        assert composite.run(0.0, b"").verdict is Verdict.VALID

    def test_one_invalid_part_invalidates(self):
        composite = CompositeVerifier(
            [AlwaysValidVerifier(), AlwaysInvalidVerifier()]
        )
        assert composite.run(0.0, b"").verdict is Verdict.INVALID

    def test_parts_execution_counts_increment(self):
        parts = [AlwaysValidVerifier(), AlwaysValidVerifier()]
        CompositeVerifier(parts).run(0.0, b"")
        assert all(part.executions == 1 for part in parts)

    def test_cost_sums_part_costs(self):
        parts = [TTLVerifier(0.0, 1.0, cost_ms=0.5), TTLVerifier(0.0, 1.0, cost_ms=0.2)]
        assert CompositeVerifier(parts).cost_ms == pytest.approx(0.7)

    def test_empty_composite_raises(self):
        with pytest.raises(VerifierError):
            CompositeVerifier([])

    def test_part_revalidation_demotes_to_invalid(self):
        threshold = ThresholdVerifier(
            observe=lambda: 10.0,
            baseline=1.0,
            threshold_fraction=0.1,
            patcher=lambda content, value: b"patched",
        )
        composite = CompositeVerifier([threshold])
        assert composite.run(0.0, b"").verdict is Verdict.INVALID


class TestThresholdVerifier:
    def test_within_threshold_is_valid(self):
        verifier = ThresholdVerifier(
            observe=lambda: 102.0, baseline=100.0, threshold_fraction=0.05
        )
        assert verifier.run(0.0, b"").verdict is Verdict.VALID

    def test_beyond_threshold_without_patcher_invalidates(self):
        verifier = ThresholdVerifier(
            observe=lambda: 120.0, baseline=100.0, threshold_fraction=0.05
        )
        assert verifier.run(0.0, b"").verdict is Verdict.INVALID

    def test_beyond_threshold_with_patcher_revalidates(self):
        verifier = ThresholdVerifier(
            observe=lambda: 120.0,
            baseline=100.0,
            threshold_fraction=0.05,
            patcher=lambda content, value: content + f"|{value}".encode(),
        )
        result = verifier.run(0.0, b"quote")
        assert result.verdict is Verdict.REVALIDATED
        assert result.patched_content == b"quote|120.0"
        assert result.serves_from_cache

    def test_patching_rebaselines(self):
        value = [120.0]
        verifier = ThresholdVerifier(
            observe=lambda: value[0],
            baseline=100.0,
            threshold_fraction=0.05,
            patcher=lambda content, v: content,
        )
        assert verifier.run(0.0, b"").verdict is Verdict.REVALIDATED
        # Same value again: now within threshold of the new baseline.
        assert verifier.run(0.0, b"").verdict is Verdict.VALID

    def test_zero_baseline_uses_absolute_drift(self):
        verifier = ThresholdVerifier(
            observe=lambda: 0.0, baseline=0.0, threshold_fraction=0.5
        )
        assert verifier.run(0.0, b"").verdict is Verdict.VALID

    def test_negative_threshold_raises(self):
        with pytest.raises(VerifierError):
            ThresholdVerifier(lambda: 0.0, 0.0, -0.1)
