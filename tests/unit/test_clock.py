"""Tests for the virtual clock and its schedule."""

from __future__ import annotations

import pytest

from repro.errors import ClockError
from repro.sim.clock import VirtualClock


class TestAdvance:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now_ms == 0.0

    def test_custom_start(self):
        assert VirtualClock(start_ms=100.0).now_ms == 100.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.now_ms == 5.0

    def test_advance_zero_is_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now_ms == 0.0

    def test_advance_negative_raises(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(-1.0)

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(42.0)
        assert clock.now_ms == 42.0

    def test_advance_to_past_raises(self):
        clock = VirtualClock(start_ms=10.0)
        with pytest.raises(ClockError):
            clock.advance_to(5.0)


class TestCharge:
    def test_charge_moves_time_and_accumulates(self):
        clock = VirtualClock()
        clock.charge(3.0)
        clock.charge(2.0)
        assert clock.now_ms == 5.0
        assert clock.total_charged_ms == 5.0

    def test_advance_does_not_count_as_charged(self):
        clock = VirtualClock()
        clock.advance(100.0)
        assert clock.total_charged_ms == 0.0

    def test_charge_negative_raises(self):
        with pytest.raises(ClockError):
            VirtualClock().charge(-0.1)


class TestSchedule:
    def test_callback_fires_when_time_arrives(self):
        clock = VirtualClock()
        fired = []
        clock.call_after(10.0, lambda: fired.append(clock.now_ms))
        clock.advance(9.9)
        assert fired == []
        clock.advance(0.1)
        assert fired == [10.0]

    def test_callbacks_fire_in_due_order(self):
        clock = VirtualClock()
        order = []
        clock.call_at(20.0, lambda: order.append("late"))
        clock.call_at(10.0, lambda: order.append("early"))
        clock.advance(30.0)
        assert order == ["early", "late"]

    def test_simultaneous_callbacks_fire_fifo(self):
        clock = VirtualClock()
        order = []
        for index in range(5):
            clock.call_at(10.0, lambda i=index: order.append(i))
        clock.advance(10.0)
        assert order == [0, 1, 2, 3, 4]

    def test_callback_sees_its_due_time_as_now(self):
        clock = VirtualClock()
        seen = []
        clock.call_at(7.0, lambda: seen.append(clock.now_ms))
        clock.advance(50.0)
        assert seen == [7.0]
        assert clock.now_ms == 50.0

    def test_callback_can_schedule_within_window(self):
        clock = VirtualClock()
        fired = []
        def first():
            clock.call_after(5.0, lambda: fired.append("second"))
        clock.call_at(10.0, first)
        clock.advance(20.0)
        assert fired == ["second"]

    def test_cancel_prevents_firing(self):
        clock = VirtualClock()
        fired = []
        call = clock.call_after(5.0, lambda: fired.append(1))
        call.cancel()
        clock.advance(10.0)
        assert fired == []

    def test_pending_counts_live_calls(self):
        clock = VirtualClock()
        first = clock.call_after(5.0, lambda: None)
        clock.call_after(6.0, lambda: None)
        assert clock.pending() == 2
        first.cancel()
        assert clock.pending() == 1

    def test_schedule_in_past_raises(self):
        clock = VirtualClock(start_ms=10.0)
        with pytest.raises(ClockError):
            clock.call_at(5.0, lambda: None)
        with pytest.raises(ClockError):
            clock.call_after(-1.0, lambda: None)

    def test_charge_also_fires_due_callbacks(self):
        clock = VirtualClock()
        fired = []
        clock.call_after(1.0, lambda: fired.append(1))
        clock.charge(2.0)
        assert fired == [1]
