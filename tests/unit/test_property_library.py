"""Tests for the standard active-property library."""

from __future__ import annotations

import zlib

import pytest

from repro.cache.cacheability import Cacheability
from repro.events.types import EventType
from repro.placeless.kernel import PlacelessKernel
from repro.properties.audit import ReadAuditTrailProperty
from repro.properties.compression import CompressionProperty
from repro.properties.encryption import EncryptionProperty
from repro.properties.qos import QoSProperty
from repro.properties.replication import ReplicationProperty
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.summarize import SummaryProperty
from repro.properties.translate import TranslationProperty
from repro.properties.uncacheable import UncacheableProperty
from repro.properties.versioning import VersioningProperty
from repro.providers.memory import MemoryProvider
from repro.providers.simfs import SimulatedFileSystem


@pytest.fixture
def world(kernel, user):
    provider = MemoryProvider(kernel.ctx, b"The documnet propertys")
    base = kernel.create_document(user, provider, "doc")
    reference = kernel.space(user).add_reference(base)
    return kernel, base, reference, provider


class TestSpellingCorrector:
    def test_corrects_on_read(self, world):
        _, _, reference, _ = world
        reference.attach(SpellingCorrectorProperty())
        assert reference.read_content() == b"The document properties"

    def test_corrects_on_write(self, world):
        _, _, reference, provider = world
        reference.attach(SpellingCorrectorProperty())
        reference.write_content(b"teh seperate documnet")
        assert provider.peek() == b"the separate document"

    def test_preserves_capitalization(self):
        corrector = SpellingCorrectorProperty()
        assert corrector.correct_text("Teh start") == "The start"

    def test_counts_corrections(self, world):
        _, _, reference, _ = world
        corrector = SpellingCorrectorProperty()
        reference.attach(corrector)
        reference.read_content()
        assert corrector.words_corrected == 2

    def test_signature_changes_on_dictionary_upgrade(self, world):
        _, _, reference, _ = world
        corrector = SpellingCorrectorProperty()
        reference.attach(corrector)
        before = corrector.transform_signature()
        corrector.upgrade_dictionary({"wierd": "weird"})
        assert corrector.transform_signature() != before
        assert corrector.version == 2

    def test_custom_dictionary(self):
        corrector = SpellingCorrectorProperty(corrections={"foo": "bar"})
        assert corrector.correct_text("foo teh foo") == "bar teh bar"


class TestTranslation:
    def test_translates_on_read(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"hello world")
        reference = kernel.import_document(user, provider, "doc")
        reference.attach(TranslationProperty())
        assert reference.read_content() == b"bonjour monde"

    def test_write_path_untouched(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"")
        reference = kernel.import_document(user, provider, "doc")
        reference.attach(TranslationProperty())
        reference.write_content(b"hello world")
        assert provider.peek() == b"hello world"

    def test_counts_translations(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"the cache")
        reference = kernel.import_document(user, provider, "doc")
        translator = TranslationProperty()
        reference.attach(translator)
        reference.read_content()
        assert translator.words_translated == 2

    def test_signature_includes_language(self):
        assert "/fr/" in TranslationProperty().transform_signature()


class TestSummary:
    def test_keeps_first_sentences(self):
        summary = SummaryProperty(sentences_per_paragraph=1)
        text = "One. Two. Three.\n\nFour! Five."
        assert summary.summarize_text(text) == "One.\n\nFour!"

    def test_max_sentences_cap(self):
        summary = SummaryProperty(sentences_per_paragraph=2, max_sentences=3)
        text = "A. B. C.\n\nD. E. F.\n\nG."
        assert summary.summarize_text(text) == "A. B.\n\nD."

    def test_on_read_path(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"First. Second. Third.")
        reference = kernel.import_document(user, provider, "doc")
        reference.attach(SummaryProperty())
        assert reference.read_content() == b"First."


class TestVersioning:
    def test_snapshot_taken_before_overwrite(self, world):
        _, base, reference, provider = world
        versioning = VersioningProperty()
        base.attach(versioning)
        reference.write_content(b"new draft")
        assert versioning.version_count == 1
        snapshot = versioning.snapshots[0]
        assert snapshot.content == b"The documnet propertys"
        assert provider.peek() == b"new draft"

    def test_static_link_property_added(self, world):
        _, base, reference, _ = world
        base.attach(VersioningProperty())
        reference.write_content(b"v2")
        assert base.has_property("version-1")
        reference.write_content(b"v3")
        assert base.has_property("version-2")

    def test_get_version_resolves_link(self, world):
        _, base, reference, _ = world
        versioning = VersioningProperty()
        base.attach(versioning)
        reference.write_content(b"v2")
        link = base.find_property("version-1")
        assert versioning.get_version(link.value) == b"The documnet propertys"

    def test_get_unknown_version_raises(self):
        with pytest.raises(KeyError):
            VersioningProperty().get_version("nope")

    def test_snapshot_records_writer(self, world):
        _, base, reference, _ = world
        versioning = VersioningProperty()
        base.attach(versioning)
        reference.write_content(b"v2")
        assert versioning.snapshots[0].saved_by == reference.owner


class TestReplication:
    def test_replicates_on_timer(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"master copy")
        reference = kernel.import_document(user, provider, "doc")
        replica_fs = SimulatedFileSystem(kernel.ctx.clock)
        replication = ReplicationProperty(
            kernel.timers, replica_fs, "/replica/doc", period_ms=100.0
        )
        reference.attach(replication)
        assert replication.replica_content == b""
        kernel.ctx.clock.advance(150.0)
        assert replication.replica_content == b"master copy"
        assert replication.replications == 1

    def test_replica_follows_updates(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"v1")
        reference = kernel.import_document(user, provider, "doc")
        replica_fs = SimulatedFileSystem(kernel.ctx.clock)
        replication = ReplicationProperty(
            kernel.timers, replica_fs, "/r", period_ms=100.0
        )
        reference.attach(replication)
        kernel.ctx.clock.advance(150.0)
        reference.write_content(b"v2")
        kernel.ctx.clock.advance(100.0)
        assert replication.replica_content == b"v2"

    def test_detach_cancels_timer(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"x")
        reference = kernel.import_document(user, provider, "doc")
        replica_fs = SimulatedFileSystem(kernel.ctx.clock)
        replication = ReplicationProperty(
            kernel.timers, replica_fs, "/r", period_ms=100.0
        )
        reference.attach(replication)
        reference.detach(replication)
        kernel.ctx.clock.advance(500.0)
        assert replication.replications == 0
        assert kernel.timers.live_subscriptions() == []


class TestAudit:
    def test_records_reads(self, world):
        _, _, reference, _ = world
        audit = ReadAuditTrailProperty()
        reference.attach(audit)
        reference.read_content()
        reference.read_content()
        assert audit.reads_observed == 2
        assert audit.cache_served_reads == 0

    def test_votes_cacheable_with_events(self):
        vote = ReadAuditTrailProperty().cacheability_vote()
        assert vote is Cacheability.CACHEABLE_WITH_EVENTS

    def test_forwarded_reads_marked(self, world):
        _, _, reference, _ = world
        audit = ReadAuditTrailProperty()
        reference.attach(audit)
        event = reference.make_event(EventType.READ_FORWARDED)
        reference.dispatcher.dispatch(event)
        assert audit.cache_served_reads == 1


class TestQoS:
    def test_inflation_defaults_scale_with_target(self):
        tight = QoSProperty(max_access_time_ms=100.0)
        loose = QoSProperty(max_access_time_ms=900.0)
        assert tight.inflation_ms > loose.inflation_ms

    def test_explicit_inflation(self):
        assert QoSProperty(inflation_ms=42.0).replacement_cost_bonus_ms() == 42.0

    def test_compliance_accounting(self):
        qos = QoSProperty(max_access_time_ms=10.0)
        qos.record_access(5.0)
        qos.record_access(20.0)
        assert qos.violations == 1
        assert qos.compliance == 0.5

    def test_compliance_empty_is_one(self):
        assert QoSProperty().compliance == 1.0

    def test_inflates_read_path_cost(self, world):
        _, _, reference, _ = world
        plain = reference.open_input()
        plain.read_all()
        baseline = plain.meta.replacement_cost_ms
        reference.attach(QoSProperty(max_access_time_ms=100.0))
        inflated = reference.open_input()
        inflated.read_all()
        assert inflated.meta.replacement_cost_ms > baseline + 100.0


class TestUncacheable:
    def test_votes_uncacheable(self, world):
        _, _, reference, _ = world
        reference.attach(UncacheableProperty())
        result = reference.open_input()
        result.read_all()
        assert result.meta.cacheability is Cacheability.UNCACHEABLE


class TestEncryption:
    def test_roundtrip_through_document(self, kernel, user):
        provider = MemoryProvider(kernel.ctx)
        reference = kernel.import_document(user, provider, "secret")
        reference.attach(EncryptionProperty(b"key"))
        reference.write_content(b"attack at dawn")
        assert provider.peek() != b"attack at dawn"
        assert reference.read_content() == b"attack at dawn"

    def test_chunked_writes_and_reads_consistent(self, kernel, user):
        provider = MemoryProvider(kernel.ctx)
        reference = kernel.import_document(user, provider, "secret")
        reference.attach(EncryptionProperty(b"key"))
        result = reference.open_output()
        for chunk in (b"attack", b" at", b" dawn"):
            result.stream.write(chunk)
        result.stream.close()
        stream = reference.open_input().stream
        pieces = iter(lambda: stream.read(3), b"")
        assert b"".join(pieces) == b"attack at dawn"

    def test_wrong_key_garbles(self, kernel, user):
        provider = MemoryProvider(kernel.ctx)
        reference = kernel.import_document(user, provider, "secret")
        enc = EncryptionProperty(b"key-one")
        reference.attach(enc)
        reference.write_content(b"plaintext")
        reference.detach(enc)
        reference.attach(EncryptionProperty(b"key-two"))
        assert reference.read_content() != b"plaintext"

    def test_empty_key_raises(self):
        with pytest.raises(ValueError):
            EncryptionProperty(b"")

    def test_signature_depends_on_key(self):
        one = EncryptionProperty(b"a").transform_signature()
        two = EncryptionProperty(b"b").transform_signature()
        assert one != two


class TestCompression:
    def test_stores_compressed_serves_plain(self, kernel, user):
        provider = MemoryProvider(kernel.ctx)
        reference = kernel.import_document(user, provider, "doc")
        reference.attach(CompressionProperty())
        payload = b"repetitive " * 200
        reference.write_content(payload)
        at_rest = provider.peek()
        assert len(at_rest) < len(payload)
        assert zlib.decompress(at_rest) == payload
        assert reference.read_content() == payload

    def test_empty_document_roundtrip(self, kernel, user):
        provider = MemoryProvider(kernel.ctx)
        reference = kernel.import_document(user, provider, "doc")
        reference.attach(CompressionProperty())
        assert reference.read_content() == b""

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError):
            CompressionProperty(level=10)
