"""Tests for the replacement policies."""

from __future__ import annotations

import pytest

from repro.cache.cacheability import Cacheability
from repro.cache.entry import CacheEntry, EntryKey
from repro.cache.replacement import (
    FIFOPolicy,
    GreedyDualPolicy,
    GreedyDualSizePolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    SizePolicy,
    make_policy,
)
from repro.content.signature import sign
from repro.errors import CacheError
from repro.ids import DocumentId, UserId


def make_entry(name: str, size: int = 100, cost: float = 1.0) -> CacheEntry:
    return CacheEntry(
        key=EntryKey(DocumentId(name), UserId("u")),
        signature=sign(name.encode()),
        size=size,
        cacheability=Cacheability.UNRESTRICTED,
        verifiers=[],
        replacement_cost_ms=cost,
        chain_signature=(),
        reference_id=None,
        created_at_ms=0.0,
        last_access_ms=0.0,
    )


def register(policy, entries):
    table = {}
    for entry in entries:
        table[entry.key] = entry
        policy.on_insert(entry)
    return table


class TestLRU:
    def test_evicts_least_recent(self):
        policy = LRUPolicy()
        entries = [make_entry("a"), make_entry("b"), make_entry("c")]
        table = register(policy, entries)
        policy.on_access(entries[0])  # refresh "a"
        victim = policy.select_victim(table)
        assert victim == entries[1].key

    def test_empty_raises(self):
        with pytest.raises(CacheError):
            LRUPolicy().select_victim({})


class TestLFU:
    def test_evicts_least_frequent(self):
        policy = LFUPolicy()
        entries = [make_entry("a"), make_entry("b")]
        table = register(policy, entries)
        for _ in range(3):
            entries[0].access_count += 1
            policy.on_access(entries[0])
        assert policy.select_victim(table) == entries[1].key


class TestFIFO:
    def test_evicts_oldest_insert_despite_access(self):
        policy = FIFOPolicy()
        entries = [make_entry("a"), make_entry("b")]
        table = register(policy, entries)
        policy.on_access(entries[0])  # must not refresh under FIFO
        assert policy.select_victim(table) == entries[0].key


class TestSize:
    def test_evicts_largest(self):
        policy = SizePolicy()
        entries = [make_entry("small", size=10), make_entry("big", size=1000)]
        table = register(policy, entries)
        assert policy.select_victim(table) == entries[1].key


class TestGreedyDualSize:
    def test_prefers_evicting_cheap_per_byte(self):
        policy = GreedyDualSizePolicy()
        cheap = make_entry("cheap", size=100, cost=1.0)
        precious = make_entry("precious", size=100, cost=100.0)
        table = register(policy, [cheap, precious])
        assert policy.select_victim(table) == cheap.key

    def test_size_normalizes_cost(self):
        policy = GreedyDualSizePolicy()
        # same cost, bigger object -> lower H -> evicted first
        big = make_entry("big", size=10_000, cost=10.0)
        small = make_entry("small", size=10, cost=10.0)
        table = register(policy, [big, small])
        assert policy.select_victim(table) == big.key

    def test_inflation_rises_monotonically(self):
        policy = GreedyDualSizePolicy()
        entries = [make_entry(f"e{i}", cost=float(i + 1)) for i in range(4)]
        table = register(policy, entries)
        previous = policy.inflation
        for _ in range(3):
            victim = policy.select_victim(table)
            del table[victim]
            assert policy.inflation >= previous
            previous = policy.inflation

    def test_recently_accessed_survives_via_inflation(self):
        # The aging mechanism: after enough evictions, an old expensive
        # entry can still be evicted in favour of newly-accessed cheap
        # ones because new pushes start at the inflated baseline.
        policy = GreedyDualSizePolicy()
        old = make_entry("old", size=100, cost=50.0)
        table = {old.key: old}
        policy.on_insert(old)
        policy.inflation = 10.0  # simulate a long-running cache
        fresh = make_entry("fresh", size=100, cost=1.0)
        table[fresh.key] = fresh
        policy.on_insert(fresh)
        # fresh H = 10 + 0.01 > old H = 0 + 0.5 -> old goes first.
        assert policy.select_victim(table) == old.key

    def test_frequency_aware_variant(self):
        policy = GreedyDualSizePolicy(frequency_aware=True)
        popular = make_entry("popular", size=100, cost=1.0)
        unpopular = make_entry("unpopular", size=100, cost=1.0)
        table = register(policy, [popular, unpopular])
        popular.access_count = 10
        policy.on_access(popular)
        assert policy.select_victim(table) == unpopular.key

    def test_cost_blind_ignores_cost(self):
        policy = GreedyDualSizePolicy(cost_source="uniform")
        cheap = make_entry("cheap", size=100, cost=1.0)
        precious = make_entry("precious", size=100, cost=1000.0)
        table = register(policy, [cheap, precious])
        # Equal sizes, uniform cost: first insert pops first (FIFO tie).
        assert policy.select_victim(table) == cheap.key
        policy2 = GreedyDualSizePolicy(cost_source="uniform")
        table2 = register(policy2, [precious, cheap])
        assert policy2.select_victim(table2) == precious.key

    def test_invalid_cost_source_raises(self):
        with pytest.raises(CacheError):
            GreedyDualSizePolicy(cost_source="bogus")

    def test_stale_heap_items_skipped(self):
        policy = GreedyDualSizePolicy()
        entry = make_entry("e", cost=1.0)
        table = {entry.key: entry}
        policy.on_insert(entry)
        for _ in range(5):
            policy.on_access(entry)  # five stale items + one live
        assert policy.select_victim(table) == entry.key


class TestGreedyDual:
    def test_size_blind_cost_aware(self):
        policy = GreedyDualPolicy()
        small_cheap = make_entry("a", size=10, cost=1.0)
        big_precious = make_entry("b", size=10_000, cost=100.0)
        table = register(policy, [small_cheap, big_precious])
        assert policy.select_victim(table) == small_cheap.key


class TestRandom:
    def test_deterministic_for_seed(self):
        entries = [make_entry(f"e{i}") for i in range(10)]
        table = {e.key: e for e in entries}
        first = RandomPolicy(seed=5).select_victim(dict(table))
        second = RandomPolicy(seed=5).select_victim(dict(table))
        assert first == second

    def test_empty_raises(self):
        with pytest.raises(CacheError):
            RandomPolicy().select_victim({})


class TestFactory:
    @pytest.mark.parametrize(
        "name",
        ["gds", "gdsf", "gds-costblind", "gd", "lru", "lfu", "fifo", "size",
         "random"],
    )
    def test_known_names(self, name):
        policy = make_policy(name)
        assert policy.name == name or policy.name.startswith(name.split("-")[0])

    def test_unknown_name_raises(self):
        with pytest.raises(CacheError):
            make_policy("clock-pro")


class TestHeapCompaction:
    """Lazy-deletion garbage must not grow without bound under churn."""

    def test_stale_items_bounded_under_churn(self):
        from repro.cache.replacement import (
            _COMPACT_MIN_HEAP,
            LRUPolicy,
        )

        policy = LRUPolicy()
        table = {}
        # Constant occupancy (64 live entries), heavy insert/remove and
        # re-access churn: every cycle strands stale heap items.  Before
        # compaction the heap grew by one item per touch, forever.
        live = [make_entry(f"seed-{i}") for i in range(64)]
        for entry in live:
            table[entry.key] = entry
            policy.on_insert(entry)
        for round_number in range(200):
            for entry in live:
                policy.on_access(entry)  # strands the previous heap item
            evicted = live.pop(0)
            policy.on_remove(evicted)
            del table[evicted.key]
            newcomer = make_entry(f"churn-{round_number}")
            table[newcomer.key] = newcomer
            policy.on_insert(newcomer)
            live.append(newcomer)
        # 200 rounds x 65 touches ≈ 13k strandings; the heap must stay
        # within the compaction envelope, not accumulate all of them.
        assert len(policy._heap) <= 2 * _COMPACT_MIN_HEAP
        assert policy.stale_items <= len(policy._heap)

    def test_compaction_preserves_victim_order(self):
        from repro.cache.replacement import LRUPolicy

        reference = LRUPolicy()
        compacted = LRUPolicy()
        table_a, table_b = {}, {}
        entries = [make_entry(f"e-{i}") for i in range(48)]
        for entry_a in entries:
            entry_b = make_entry(entry_a.key.document_id.value)
            table_a[entry_a.key] = entry_a
            table_b[entry_b.key] = entry_b
            reference.on_insert(entry_a)
            compacted.on_insert(entry_b)
            reference.on_access(entry_a)
            compacted.on_access(entry_b)
        # Force a manual rebuild on one policy only.
        compacted._heap = [
            item
            for item in compacted._heap
            if compacted._stamps.get(item[2]) == item[3]
        ]
        import heapq

        heapq.heapify(compacted._heap)
        order_a = [reference.select_victim(table_a) for _ in range(48)]
        order_b = [compacted.select_victim(table_b) for _ in range(48)]
        assert order_a == order_b


class TestReinforcedCounter:
    def test_evicts_least_reinforced(self):
        from repro.cache.replacement import ReinforcedCounterPolicy

        policy = ReinforcedCounterPolicy()
        entries = [make_entry(name) for name in ("cold", "warm", "hot")]
        table = register(policy, entries)
        for _ in range(3):
            policy.on_access(table[entries[1].key])
        for _ in range(6):
            policy.on_access(table[entries[2].key])
        assert policy.select_victim(table) == entries[0].key

    def test_counter_caps(self):
        from repro.cache.replacement import ReinforcedCounterPolicy

        policy = ReinforcedCounterPolicy(counter_cap=4)
        entry = make_entry("capped")
        table = register(policy, [entry])
        for _ in range(50):
            policy.on_access(entry)
        assert policy._counter_of(entry) <= 4

    def test_epoch_decay_halves_counters(self):
        from repro.cache.replacement import ReinforcedCounterPolicy

        policy = ReinforcedCounterPolicy(counter_cap=8, decay_interval=4)
        entry = make_entry("decaying")
        register(policy, [entry])
        for _ in range(3):
            policy.on_access(entry)  # 4 accesses total -> epoch bump
        counter_now = policy._counter_of(entry)
        filler = make_entry("filler")
        policy.on_insert(filler)  # advance the shared access count
        for _ in range(7):
            policy.on_insert(make_entry(f"f{_}"))
        assert policy._epoch >= 1
        # Lazy halving: the stored counter is shifted by elapsed epochs.
        assert policy._counter_of(entry) <= counter_now

    def test_factory_knows_rc(self):
        policy = make_policy("rc")
        assert policy.name == "rc"
