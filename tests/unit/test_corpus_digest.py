"""Corpus byte-identity: lazy catalog vs. the historical eager builder.

``build_corpus`` now delegates to :class:`ChurnCatalog` and
materializes through it.  The digests below were captured from the
pre-delegation eager builder; matching them proves the lazy path mints
the same labels, repositories, sizes, content bytes and document ids
in the same order — i.e. every downstream seeded experiment is
unaffected by the rewrite.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.placeless.kernel import PlacelessKernel
from repro.workload.churn import ChurnCatalog
from repro.workload.documents import CorpusSpec, build_corpus

#: sha256[:16] of the 40-document corpus under the eager builder,
#: captured before build_corpus started delegating to ChurnCatalog.
EAGER_BUILDER_DIGESTS = {
    42: "9d56d9d3cb272049",
    7: "8cc471086aa9d06a",
    99: "ef1ded89bf9c58ac",
}


def corpus_digest(corpus) -> str:
    hasher = hashlib.sha256()
    for document in corpus:
        hasher.update(
            f"{document.label}|{document.repository}|"
            f"{document.size_bytes}|".encode()
        )
        hasher.update(
            hashlib.sha256(document.provider.peek()).hexdigest().encode()
        )
        hasher.update(str(document.reference.base.document_id).encode())
    return hasher.hexdigest()[:16]


@pytest.mark.parametrize("seed", sorted(EAGER_BUILDER_DIGESTS))
def test_build_corpus_matches_eager_goldens(seed):
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner, CorpusSpec(n_documents=40, seed=seed)
    )
    assert corpus_digest(corpus) == EAGER_BUILDER_DIGESTS[seed]


def test_out_of_order_materialization_is_byte_identical():
    """Touching documents in a scrambled order must not change them."""
    spec = CorpusSpec(n_documents=40, seed=42)

    kernel_a = PlacelessKernel()
    catalog_a = ChurnCatalog(kernel_a, kernel_a.create_user("owner"), spec)
    in_order = catalog_a.materialize_all()

    kernel_b = PlacelessKernel()
    catalog_b = ChurnCatalog(kernel_b, kernel_b.create_user("owner"), spec)
    scrambled = list(range(40))
    scrambled.reverse()
    for index in scrambled:
        catalog_b.document(index)
    out_of_order = catalog_b.materialize_all()

    for left, right in zip(in_order, out_of_order):
        assert left.label == right.label
        assert left.repository == right.repository
        assert left.size_bytes == right.size_bytes
        assert left.provider.peek() == right.provider.peek()
