"""Unit tests for the pieces extracted from the cache monolith: the
pluggable admission/degradation policies, the instrumentation bus with
its projections, and the staged pipeline's observable behaviour when a
policy is swapped in through the ``DocumentCache`` constructor."""

from __future__ import annotations

import pytest

from repro.cache.cacheability import Cacheability
from repro.cache.instrumentation import (
    BusStatsProjection,
    InstrumentationBus,
    StageEvent,
    StageRecorder,
    StatsProjection,
)
from repro.cache.manager import DocumentCache
from repro.cache.policies import (
    AdmissionDecision,
    AdmissionPolicy,
    DefaultDegradationPolicy,
    DegradationPolicy,
    VoteAdmissionPolicy,
)
from repro.cache.stats import CacheStats
from repro.errors import CacheError
from repro.ids import DocumentId
from repro.placeless.document import PathMeta
from repro.providers.memory import MemoryProvider


def _meta(vote: Cacheability) -> PathMeta:
    return PathMeta(votes=[vote])


class TestVoteAdmissionPolicy:
    def test_unrestricted_content_admitted(self):
        policy = VoteAdmissionPolicy()
        decision = policy.decide(
            b"x" * 10, _meta(Cacheability.UNRESTRICTED), capacity_bytes=100
        )
        assert decision is AdmissionDecision.ADMIT

    def test_uncacheable_vote_wins_over_size(self):
        policy = VoteAdmissionPolicy()
        decision = policy.decide(
            b"x" * 1000, _meta(Cacheability.UNCACHEABLE), capacity_bytes=100
        )
        assert decision is AdmissionDecision.UNCACHEABLE

    def test_content_larger_than_whole_cache_is_oversize(self):
        policy = VoteAdmissionPolicy()
        decision = policy.decide(
            b"x" * 101, _meta(Cacheability.UNRESTRICTED), capacity_bytes=100
        )
        assert decision is AdmissionDecision.OVERSIZE

    def test_exactly_capacity_sized_content_admitted(self):
        policy = VoteAdmissionPolicy()
        decision = policy.decide(
            b"x" * 100, _meta(Cacheability.UNRESTRICTED), capacity_bytes=100
        )
        assert decision is AdmissionDecision.ADMIT

    def test_satisfies_protocol(self):
        assert isinstance(VoteAdmissionPolicy(), AdmissionPolicy)


class TestDefaultDegradationPolicy:
    def test_negative_stale_age_rejected(self):
        with pytest.raises(CacheError):
            DefaultDegradationPolicy(stale_serve_max_age_ms=-1.0)

    def test_quarantine_threshold_below_one_rejected(self):
        with pytest.raises(CacheError):
            DefaultDegradationPolicy(verifier_quarantine_threshold=0)

    def test_unbounded_stale_age_accepts_anything(self):
        policy = DefaultDegradationPolicy(serve_stale_on_error=True)
        assert policy.stale_age_acceptable(1e12)

    def test_stale_age_bound_is_inclusive(self):
        policy = DefaultDegradationPolicy(stale_serve_max_age_ms=500.0)
        assert policy.stale_age_acceptable(500.0)
        assert not policy.stale_age_acceptable(500.1)

    def test_quarantine_requires_consecutive_failures(self):
        policy = DefaultDegradationPolicy(verifier_quarantine_threshold=3)
        key = (DocumentId(1), "ThresholdVerifier")
        assert not policy.note_verifier_failure(key)
        assert not policy.note_verifier_failure(key)
        # A clean run resets the streak, so the next failure is #1 again.
        policy.note_verifier_success(key)
        assert not policy.note_verifier_failure(key)
        assert not policy.note_verifier_failure(key)
        assert policy.note_verifier_failure(key)  # newly quarantined
        assert policy.is_quarantined(key)
        # Already quarantined: further failures are not "newly".
        assert not policy.note_verifier_failure(key)

    def test_no_threshold_means_no_quarantine(self):
        policy = DefaultDegradationPolicy()
        key = (DocumentId(1), "V")
        for _ in range(100):
            policy.note_verifier_failure(key)
        assert not policy.is_quarantined(key)
        assert policy.breakers.open_keys() == set()

    def test_breaker_reset_clears_streaks_too(self):
        policy = DefaultDegradationPolicy(verifier_quarantine_threshold=1)
        a = (DocumentId(1), "A")
        b = (DocumentId(2), "B")
        policy.note_verifier_failure(a)
        policy.note_verifier_failure(b)
        assert policy.breakers.open_keys() == {a, b}
        assert policy.breakers.reset_all() == 2
        assert policy.breakers.open_keys() == set()
        # Streaks were cleared: one failure re-quarantines (threshold 1).
        assert policy.note_verifier_failure(a)

    def test_open_keys_returns_a_copy(self):
        policy = DefaultDegradationPolicy(verifier_quarantine_threshold=1)
        key = (DocumentId(1), "A")
        policy.note_verifier_failure(key)
        snapshot = policy.breakers.open_keys()
        snapshot.clear()
        assert policy.is_quarantined(key)

    def test_satisfies_protocol(self):
        assert isinstance(DefaultDegradationPolicy(), DegradationPolicy)


class TestInstrumentationBus:
    def test_subscribers_run_in_subscription_order(self):
        bus = InstrumentationBus()
        order: list[str] = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.emit(StageEvent(stage="read", outcome="hit"))
        assert order == ["first", "second"]

    def test_unsubscribe_stops_delivery(self):
        bus = InstrumentationBus()
        seen: list[StageEvent] = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.unsubscribe(seen.append)  # absent: no-op
        bus.emit(StageEvent(stage="read", outcome="hit"))
        assert seen == []

    def test_elapsed_is_end_minus_start(self):
        event = StageEvent(
            stage="fetch", outcome="failed", started_ms=2.5, ended_ms=4.0
        )
        assert event.elapsed_ms == pytest.approx(1.5)


class TestStageRecorder:
    def test_aggregates_count_and_latency_per_cell(self):
        recorder = StageRecorder()
        recorder(StageEvent("read", "hit", started_ms=0.0, ended_ms=1.0))
        recorder(StageEvent("read", "hit", started_ms=0.0, ended_ms=3.0))
        recorder(StageEvent("read", "miss", started_ms=0.0, ended_ms=10.0))
        cell = recorder.cells[("read", "hit")]
        assert cell.count == 2
        assert cell.elapsed_ms == pytest.approx(4.0)
        assert cell.mean_ms == pytest.approx(2.0)
        assert recorder.cells[("read", "miss")].count == 1

    def test_rows_follow_canonical_stage_order(self):
        recorder = StageRecorder()
        recorder(StageEvent("eviction", "evicted"))
        recorder(StageEvent("read", "miss"))
        recorder(StageEvent("unknown-stage", "x"))
        stages = [row[0] for row in recorder.rows()]
        assert stages == ["read", "eviction", "unknown-stage"]

    def test_merge_folds_cells(self):
        left, right = StageRecorder(), StageRecorder()
        left(StageEvent("read", "hit", started_ms=0.0, ended_ms=1.0))
        right(StageEvent("read", "hit", started_ms=0.0, ended_ms=2.0))
        right(StageEvent("flush", "flushed"))
        left.merge(right)
        assert left.cells[("read", "hit")].count == 2
        assert left.cells[("read", "hit")].elapsed_ms == pytest.approx(3.0)
        assert left.cells[("flush", "flushed")].count == 1

    def test_render_empty_recorder(self):
        text = StageRecorder().render(title="empty")
        assert "empty" in text and "(no events recorded)" in text

    def test_render_contains_every_cell(self):
        recorder = StageRecorder()
        recorder(StageEvent("read", "stale-on-error"))
        assert "stale-on-error" in recorder.render()


class TestStatsProjection:
    def _project(self, *events: StageEvent) -> CacheStats:
        stats = CacheStats()
        projection = StatsProjection(stats)
        for event in events:
            projection(event)
        return stats

    def test_terminal_read_hit_vs_miss(self):
        stats = self._project(
            StageEvent("read", "hit", started_ms=0.0, ended_ms=1.0,
                       payload={"bytes": 11}),
            StageEvent("read", "revalidated", started_ms=0.0, ended_ms=2.0,
                       payload={"bytes": 5}),
            StageEvent("read", "miss", started_ms=0.0, ended_ms=40.0),
            StageEvent("read", "stale-on-error", started_ms=0.0, ended_ms=8.0),
        )
        assert stats.hits == 2 and stats.misses == 2
        assert stats.hit_latency_ms == pytest.approx(3.0)
        assert stats.miss_latency_ms == pytest.approx(48.0)
        assert stats.bytes_served_from_cache == 16

    def test_fetch_retry_accumulates_delay(self):
        stats = self._project(
            StageEvent("fetch", "retry", payload={"delay_ms": 100.0}),
            StageEvent("fetch", "retry", payload={"delay_ms": 200.0}),
            StageEvent("fetch", "failed"),
        )
        assert stats.retries == 2
        assert stats.retry_delay_ms == pytest.approx(300.0)
        assert stats.fetch_failures == 1

    def test_degradation_outcomes(self):
        stats = self._project(
            StageEvent("degradation", "bypassed"),
            StageEvent("degradation", "stale-served"),
            StageEvent("degradation", "stale-rejected"),
        )
        assert stats.backing_bypasses == 1
        assert stats.stale_served_on_error == 1
        assert stats.stale_serve_rejected == 1
        assert stats.degraded_serves == 2

    def test_unknown_stage_is_ignored(self):
        stats = self._project(StageEvent("no-such-stage", "whatever"))
        assert stats == CacheStats()


class TestBusStatsProjection:
    def test_only_bus_events_counted(self):
        class Stats:
            deliveries = 0
            delivery_cost_ms = 0.0
            dropped = 0
            lost = 0
            delayed = 0
            delay_ms_total = 0.0

        stats = Stats()
        projection = BusStatsProjection(stats)
        projection(StageEvent("bus", "delivered", payload={"cost_ms": 2.0}))
        projection(StageEvent("bus", "lost"))
        projection(StageEvent("bus", "delayed", payload={"delay_ms": 50.0}))
        projection(StageEvent("bus", "dropped"))
        projection(StageEvent("read", "hit"))  # not a bus event
        assert stats.deliveries == 1
        assert stats.delivery_cost_ms == pytest.approx(2.0)
        assert stats.lost == 1 and stats.dropped == 1
        assert stats.delayed == 1
        assert stats.delay_ms_total == pytest.approx(50.0)


class _RejectEverything:
    """Admission policy stub: nothing may enter the cache."""

    def decide(self, content, meta, capacity_bytes):
        return AdmissionDecision.UNCACHEABLE


class TestPolicyInjection:
    """Swapping a policy through the constructor changes stage behaviour."""

    @pytest.fixture
    def reference(self, kernel, user):
        provider = MemoryProvider(kernel.ctx, b"pipeline bytes")
        base = kernel.create_document(user, provider, "doc")
        return kernel.space(user).add_reference(base)

    def test_custom_admission_policy_blocks_fills(self, kernel, reference):
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            admission_policy=_RejectEverything(),
        )
        for _ in range(3):
            outcome = cache.read(reference)
            assert not outcome.hit
            assert outcome.disposition == "uncacheable"
        assert len(cache) == 0
        assert cache.stats.uncacheable_reads == 3
        breakdown = cache.stage_breakdown()
        assert breakdown.cells[("admission", "uncacheable")].count == 3
        assert ("admission", "filled") not in breakdown.cells

    def test_custom_degradation_policy_is_exposed(self, kernel, reference):
        policy = DefaultDegradationPolicy(
            serve_stale_on_error=True, verifier_quarantine_threshold=2
        )
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, degradation_policy=policy
        )
        assert cache.degradation_policy is policy
        assert cache.serve_stale_on_error is True
        assert cache.verifier_quarantine_threshold == 2

    def test_breakdown_records_hit_and_miss_reads(self, kernel, reference):
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(reference)
        cache.read(reference)
        cells = cache.stage_breakdown().cells
        assert cells[("read", "miss")].count == 1
        assert cells[("read", "hit")].count == 1
        assert cells[("admission", "filled")].count == 1
        # Virtual time: the one hit is far cheaper than the one miss.
        assert cells[("read", "hit")].mean_ms < cells[("read", "miss")].mean_ms

    def test_shared_instrumentation_bus_observes_cache(self, kernel,
                                                       reference):
        instrumentation = InstrumentationBus()
        recorder = StageRecorder()
        instrumentation.subscribe(recorder)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, instrumentation=instrumentation
        )
        cache.read(reference)
        assert recorder.cells[("read", "miss")].count == 1
        assert cache.stats.misses == 1
