"""Edge-case tests for the cache manager: revalidation under pressure,
adoption corner cases, describe(), and forwarding details."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.cache.verifiers import ThresholdVerifier
from repro.events.types import EventType
from repro.placeless.properties import ActiveProperty
from repro.properties.audit import ReadAuditTrailProperty
from repro.properties.qos import AlwaysAvailableProperty
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider


class GrowingPatchProperty(ActiveProperty):
    """Returns a threshold verifier whose patch doubles the content."""

    def __init__(self, signal):
        super().__init__("grower")
        self.signal = signal

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def make_verifier(self):
        return ThresholdVerifier(
            observe=lambda: self.signal[0],
            baseline=self.signal[0],
            threshold_fraction=0.01,
            patcher=lambda content, value: content * 2,
        )


class TestRevalidationEdges:
    def test_patch_growth_respects_capacity(self, kernel, user):
        signal = [1.0]
        main = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"y" * 120), "main"
        )
        main.attach(GrowingPatchProperty(signal))
        filler = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"x" * 120), "filler"
        )
        cache = DocumentCache(kernel, capacity_bytes=300)
        cache.read(main)
        cache.read(filler)
        assert len(cache) == 2
        signal[0] = 5.0  # triggers the doubling patch: 120 -> 240 bytes
        outcome = cache.read(main)
        assert outcome.disposition == "revalidated"
        assert len(outcome.content) == 240
        # The growth forced the filler out to stay within capacity.
        assert cache.used_bytes <= 300
        assert cache.entry_for(filler) is None

    def test_patched_entry_size_updated(self, kernel, user):
        signal = [1.0]
        main = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"z" * 50), "doc"
        )
        main.attach(GrowingPatchProperty(signal))
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(main)
        signal[0] = 9.0
        cache.read(main)
        assert cache.entry_for(main).size == 100


class TestAdoptionEdges:
    def test_adoption_copies_pinned_flag(self, kernel, user, other_user):
        provider = MemoryProvider(kernel.ctx, b"hot document")
        base = kernel.create_document(user, provider, "doc")
        base.attach(AlwaysAvailableProperty())  # universal: pins everyone
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        assert cache.read(theirs).disposition == "miss-adopted"
        assert cache.entry_for(theirs).pinned

    def test_adoption_skipped_when_verifiers_disabled_still_works(
        self, kernel, user, other_user
    ):
        provider = MemoryProvider(kernel.ctx, b"doc")
        base = kernel.create_document(user, provider, "doc")
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            share_across_users=True, use_verifiers=False,
        )
        cache.read(mine)
        # Without verifiers the candidate is adopted unchecked — the
        # documented trade-off of disabling verifiers.
        assert cache.read(theirs).disposition == "miss-adopted"

    def test_adoption_within_hierarchy_backing(self, kernel, user, other_user):
        provider = MemoryProvider(kernel.ctx, b"shared bytes")
        base = kernel.create_document(user, provider, "doc")
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        l2 = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            share_across_users=True, name="l2",
        )
        l1_mine = DocumentCache(
            kernel, capacity_bytes=1 << 20, backing=l2, name="l1a"
        )
        l1_theirs = DocumentCache(
            kernel, capacity_bytes=1 << 20, backing=l2, name="l1b"
        )
        l1_mine.read(mine)
        l1_theirs.read(theirs)
        # The second user's L1 miss was served via L2 adoption — one
        # kernel read total.
        assert kernel.stats.reads == 1
        assert l2.stats.sibling_adoptions == 1


class TestForwardingEdges:
    def test_forwarded_reads_keep_audit_order(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "doc"
        )
        audit = ReadAuditTrailProperty()
        reference.attach(audit)
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        for _ in range(4):
            cache.read(reference)
        kinds = [record.via_cache for record in audit.trail]
        assert kinds == [False, True, True, True]
        # Timestamps are non-decreasing.
        times = [record.at_ms for record in audit.trail]
        assert times == sorted(times)

    def test_forwarding_survives_property_detach(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "doc"
        )
        audit = ReadAuditTrailProperty()
        reference.attach(audit)
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(reference)
        reference.detach(audit)
        # The entry still says CACHEABLE_WITH_EVENTS (its vote at fill
        # time) — but forwarded events now reach nobody.  Detaching an
        # *active* non-transforming property does not invalidate, so the
        # hit path keeps forwarding harmlessly.
        outcome = cache.read(reference)
        assert outcome.hit
        assert audit.reads_observed == 1  # nothing new recorded


class TestDescribe:
    def test_describe_lists_entries_and_flags(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "doc"
        )
        pinned_ref = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"pin me"), "pinned"
        )
        pinned_ref.attach(AlwaysAvailableProperty())
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(reference)
        cache.read(pinned_ref)
        text = cache.describe()
        assert "2 entries" in text
        assert "[pinned]" in text
        assert "gds" in text

    def test_describe_empty_cache(self, kernel):
        cache = DocumentCache(kernel, capacity_bytes=1024)
        text = cache.describe()
        assert "0 entries" in text


class TestChainSignatureEdges:
    def test_upgrade_breaks_adoption_eligibility(self, kernel, user,
                                                 other_user):
        provider = MemoryProvider(kernel.ctx, b"the doc")
        base = kernel.create_document(user, provider, "doc")
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        my_translator = TranslationProperty()
        their_translator = TranslationProperty()
        mine.attach(my_translator)
        theirs.attach(their_translator)
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        their_translator.upgrade()  # v2 != my v1
        outcome = cache.read(theirs)
        assert outcome.disposition == "miss"  # no adoption across versions