"""Tests for the stream protocol, transforms and chain builders."""

from __future__ import annotations

import pytest

from repro.errors import StreamClosedError
from repro.streams.base import (
    BytesInputStream,
    BytesOutputStream,
    CountingInputStream,
    NullOutputStream,
    TeeOutputStream,
)
from repro.streams.chain import build_input_chain, build_output_chain, drain
from repro.streams.transforms import (
    BufferedTransformInputStream,
    BufferedTransformOutputStream,
    ChunkTransformInputStream,
    ChunkTransformOutputStream,
    LineTransformInputStream,
    text_transform,
)


class TestBytesStreams:
    def test_read_all(self):
        assert BytesInputStream(b"hello").read(-1) == b"hello"

    def test_read_in_chunks(self):
        stream = BytesInputStream(b"hello world")
        assert stream.read(5) == b"hello"
        assert stream.read(1) == b" "
        assert stream.read(100) == b"world"
        assert stream.read(10) == b""

    def test_read_zero(self):
        assert BytesInputStream(b"abc").read(0) == b""

    def test_remaining(self):
        stream = BytesInputStream(b"abcd")
        stream.read(1)
        assert stream.remaining == 3

    def test_read_after_close_raises(self):
        stream = BytesInputStream(b"abc")
        stream.close()
        with pytest.raises(StreamClosedError):
            stream.read(1)

    def test_context_manager_closes(self):
        with BytesInputStream(b"abc") as stream:
            stream.read(1)
        assert stream.closed

    def test_output_accumulates(self):
        out = BytesOutputStream()
        out.write(b"foo")
        out.write(b"bar")
        assert out.getvalue() == b"foobar"

    def test_output_write_returns_length(self):
        assert BytesOutputStream().write(b"abcd") == 4

    def test_write_after_close_raises(self):
        out = BytesOutputStream()
        out.close()
        with pytest.raises(StreamClosedError):
            out.write(b"x")

    def test_double_close_is_idempotent(self):
        out = BytesOutputStream()
        out.close()
        out.close()
        assert out.closed


class TestUtilityStreams:
    def test_counting_stream_counts(self):
        inner = BytesInputStream(b"x" * 100)
        counting = CountingInputStream(inner)
        counting.read(30)
        counting.read(30)
        counting.read(-1)
        assert counting.bytes_read == 100
        assert counting.read_calls >= 3

    def test_counting_close_propagates(self):
        inner = BytesInputStream(b"x")
        CountingInputStream(inner).close()
        assert inner.closed

    def test_tee_duplicates(self):
        first, second = BytesOutputStream(), BytesOutputStream()
        tee = TeeOutputStream(first, second)
        tee.write(b"data")
        tee.close()
        assert first.getvalue() == b"data"
        assert second.getvalue() == b"data"
        assert first.closed and second.closed

    def test_null_discards_and_counts(self):
        null = NullOutputStream()
        null.write(b"abc")
        null.write(b"de")
        assert null.bytes_discarded == 5


class TestTextTransform:
    def test_applies_to_text(self):
        transform = text_transform(str.upper)
        assert transform(b"hello") == b"HELLO"

    def test_passes_binary_through(self):
        transform = text_transform(str.upper)
        binary = bytes([0xFF, 0xFE, 0x80, 0x81])
        assert transform(binary) == binary


class TestBufferedTransforms:
    def test_input_transforms_whole_content(self):
        stream = BufferedTransformInputStream(
            BytesInputStream(b"abc def"), lambda data: data[::-1]
        )
        assert stream.read(-1) == b"fed cba"

    def test_input_chunked_reads_see_transformed(self):
        stream = BufferedTransformInputStream(
            BytesInputStream(b"hello"), text_transform(str.upper)
        )
        assert stream.read(2) == b"HE"
        assert stream.read(-1) == b"LLO"

    def test_output_transforms_at_close(self):
        sink = BytesOutputStream()
        stream = BufferedTransformOutputStream(sink, text_transform(str.upper))
        stream.write(b"hel")
        stream.write(b"lo")
        assert sink.getvalue() == b""  # nothing until close
        stream.close()
        assert sink.getvalue() == b"HELLO"
        assert sink.closed

    def test_output_empty_write_closes_cleanly(self):
        sink = BytesOutputStream()
        BufferedTransformOutputStream(sink, lambda d: d).close()
        assert sink.getvalue() == b""
        assert sink.closed


class TestChunkTransforms:
    def test_input_per_chunk(self):
        stream = ChunkTransformInputStream(
            BytesInputStream(b"abcdef"), lambda d: d.upper()
        )
        assert stream.read(3) == b"ABC"
        assert stream.read(-1) == b"DEF"

    def test_output_per_write(self):
        sink = BytesOutputStream()
        stream = ChunkTransformOutputStream(sink, lambda d: d.upper())
        stream.write(b"ab")
        assert sink.getvalue() == b"AB"  # immediate, unlike buffered
        stream.close()
        assert sink.closed


class TestLineTransform:
    def test_transforms_each_line(self):
        stream = LineTransformInputStream(
            BytesInputStream(b"one\ntwo\nthree"), lambda line: line.upper()
        )
        assert stream.read(-1) == b"ONE\nTWO\nTHREE"

    def test_partial_line_held_until_complete(self):
        # A transform that needs the whole line to be correct.
        def swap(line: bytes) -> bytes:
            return line[::-1]

        stream = LineTransformInputStream(
            BytesInputStream(b"abcdef\nxyz"), swap
        )
        result = b"".join(iter(lambda: stream.read(2), b""))
        assert result == b"fedcba\nzyx"

    def test_empty_stream(self):
        stream = LineTransformInputStream(BytesInputStream(b""), lambda l: l)
        assert stream.read(-1) == b""

    def test_trailing_newline_preserved(self):
        stream = LineTransformInputStream(
            BytesInputStream(b"a\nb\n"), lambda l: l * 2
        )
        assert stream.read(-1) == b"aa\nbb\n"


class TestChains:
    def test_input_chain_first_wrapper_transforms_first(self):
        # Wrapper A appends "-A" to content, then B appends "-B"; if A is
        # supplied first (executes first, innermost) the result is
        # content-A-B.
        def appender(tag: bytes):
            return lambda inner: BufferedTransformInputStream(
                inner, lambda data: data + tag
            )

        chain = build_input_chain(
            BytesInputStream(b"doc"), [appender(b"-A"), appender(b"-B")]
        )
        assert chain.read(-1) == b"doc-A-B"

    def test_output_chain_first_wrapper_outermost(self):
        # On the write path the first wrapper executes first on the
        # written data (outermost): doc -> A -> B -> sink.
        def appender(tag: bytes):
            return lambda downstream: BufferedTransformOutputStream(
                downstream, lambda data: data + tag
            )

        sink = BytesOutputStream()
        chain = build_output_chain(sink, [appender(b"-A"), appender(b"-B")])
        chain.write(b"doc")
        chain.close()
        assert sink.getvalue() == b"doc-A-B"

    def test_empty_chains_are_passthrough(self):
        assert build_input_chain(BytesInputStream(b"x"), []).read(-1) == b"x"
        sink = BytesOutputStream()
        chain = build_output_chain(sink, [])
        chain.write(b"y")
        chain.close()
        assert sink.getvalue() == b"y"

    def test_drain_reads_everything_and_closes(self):
        stream = BytesInputStream(b"z" * 10_000)
        assert drain(stream, chunk_size=512) == b"z" * 10_000
        assert stream.closed
