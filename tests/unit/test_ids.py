"""Tests for the typed id namespaces and the deterministic generator."""

from __future__ import annotations

from repro.ids import (
    CacheId,
    DocumentId,
    IdGenerator,
    PropertyId,
    ReferenceId,
    UserId,
    VersionId,
)


class TestIdTypes:
    def test_distinct_types_are_not_equal(self):
        assert DocumentId("x") != ReferenceId("x")
        assert UserId("x") != PropertyId("x")

    def test_same_type_same_value_equal(self):
        assert DocumentId("7") == DocumentId("7")

    def test_ids_are_hashable(self):
        table = {DocumentId("a"): 1, UserId("a"): 2}
        assert table[DocumentId("a")] == 1
        assert table[UserId("a")] == 2

    def test_str_includes_namespace(self):
        assert str(DocumentId("7")) == "doc:7"
        assert str(ReferenceId("7")) == "ref:7"
        assert str(UserId("7")) == "user:7"
        assert str(PropertyId("7")) == "prop:7"
        assert str(CacheId("7")) == "cache:7"
        assert str(VersionId("7")) == "version:7"


class TestIdGenerator:
    def test_serials_start_at_one(self):
        gen = IdGenerator()
        assert gen.document().value == "1"

    def test_serials_increment_per_namespace(self):
        gen = IdGenerator()
        gen.document()
        gen.document()
        assert gen.document().value == "3"

    def test_namespaces_are_independent(self):
        gen = IdGenerator()
        gen.document()
        gen.document()
        assert gen.user().value == "1"
        assert gen.reference().value == "1"

    def test_hint_is_embedded(self):
        gen = IdGenerator()
        assert gen.document("hotos.doc").value == "1-hotos.doc"

    def test_two_generators_are_identical(self):
        first = IdGenerator()
        second = IdGenerator()
        for _ in range(5):
            assert first.property("p") == second.property("p")

    def test_all_namespaces_mint_correct_types(self):
        gen = IdGenerator()
        assert isinstance(gen.document(), DocumentId)
        assert isinstance(gen.reference(), ReferenceId)
        assert isinstance(gen.user(), UserId)
        assert isinstance(gen.property(), PropertyId)
        assert isinstance(gen.cache(), CacheId)
        assert isinstance(gen.version(), VersionId)
