"""Tests for the event recorder and the remaining harness helpers."""

from __future__ import annotations

from repro.bench.harness import format_csv
from repro.events.recorder import EventRecorder
from repro.events.types import EventType
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider


class TestEventRecorder:
    def test_records_read_and_write_dispatches(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "d"
        )
        recorder = EventRecorder()
        reference.attach(recorder)
        kernel.read(reference)
        kernel.write(reference, b"new")
        assert recorder.count(EventType.GET_INPUT_STREAM) == 1
        assert recorder.count(EventType.GET_OUTPUT_STREAM) == 1

    def test_watch_filter(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "d"
        )
        recorder = EventRecorder(watch={EventType.GET_OUTPUT_STREAM})
        reference.attach(recorder)
        kernel.read(reference)
        assert recorder.records == []
        kernel.write(reference, b"x")
        assert len(recorder.records) == 1

    def test_records_property_lifecycle(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "d"
        )
        recorder = EventRecorder()
        reference.attach(recorder)
        translator = TranslationProperty()
        reference.attach(translator)
        reference.detach(translator)
        assert recorder.count(EventType.SET_PROPERTY) == 1
        assert recorder.count(EventType.REMOVE_PROPERTY) == 1

    def test_is_infrastructure_does_not_trigger_notifiers(self, kernel, user):
        from repro.cache.manager import DocumentCache

        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "d"
        )
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(reference)
        reference.attach(EventRecorder())
        # Attaching the (infrastructure) recorder must not invalidate.
        assert cache.read(reference).hit

    def test_timeline_rendering(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "d"
        )
        recorder = EventRecorder()
        reference.attach(recorder)
        assert recorder.timeline() == "(no events recorded)"
        kernel.read(reference)
        timeline = recorder.timeline()
        assert "get-input-stream" in timeline
        assert "ms" in timeline

    def test_clear(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"doc"), "d"
        )
        recorder = EventRecorder()
        reference.attach(recorder)
        kernel.read(reference)
        recorder.clear()
        assert recorder.events_seen() == []


class TestFormatCsv:
    def test_basic_csv(self):
        text = format_csv(["a", "b"], [(1, "x"), (2, "y,z")])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == '2,"y,z"'

    def test_empty_rows(self):
        assert format_csv(["only"], []) == "only\n"
