"""Per-read allocation budget on the fast-lane hit path.

The A20 hot-path work turned steady-state hits into a near-allocation-
free loop: interned keys, memoized signatures, ``__slots__`` contexts,
O(1) stat accumulation.  This test pins the budget so a regression
(say, a new per-read dict or closure on the hit path) fails loudly in
tier 1 rather than showing up later as a throughput drop in A20.

The probe counts *net* heap blocks per read with the collector
disabled, after a warmup that populates every cache and memo the
steady state relies on.
"""

from __future__ import annotations

import itertools

from repro.bench.perf import allocation_probe, peak_rss_kb, timed
from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus

#: Net heap blocks allowed per steady-state hit.  The lane currently
#: sits well under this; the headroom absorbs interpreter-version noise
#: without letting a stray per-read allocation site slip in.
HIT_ALLOCATION_BUDGET = 40.0


def _warm_cache(n_documents: int = 16):
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner, CorpusSpec(n_documents=n_documents, seed=13)
    )
    cache = DocumentCache(kernel, capacity_bytes=1 << 28)
    for document in corpus:
        cache.read(document.reference)
    return cache, corpus


def test_fast_lane_hit_stays_under_allocation_budget():
    cache, corpus = _warm_cache()
    cycle = itertools.cycle([document.reference for document in corpus])

    def one_hit() -> None:
        cache.read(next(cycle))

    blocks = allocation_probe(one_hit, iterations=256, warmup=64)
    hits_before = cache.stats.hits
    cache.read(corpus[0].reference)
    assert cache.stats.hits == hits_before + 1  # the loop measured hits
    assert blocks <= HIT_ALLOCATION_BUDGET, (
        f"fast-lane hit allocates {blocks:.1f} blocks/read "
        f"(budget {HIT_ALLOCATION_BUDGET})"
    )


def test_pipeline_hit_budget_is_finite_but_larger():
    """Sanity on the probe itself: the full pipeline allocates more."""
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(kernel, owner, CorpusSpec(n_documents=4, seed=13))
    cache = DocumentCache(kernel, capacity_bytes=1 << 28, fast_lane=False)
    cycle = itertools.cycle([document.reference for document in corpus])
    for document in corpus:
        cache.read(document.reference)

    blocks = allocation_probe(
        lambda: cache.read(next(cycle)), iterations=128, warmup=32
    )
    assert blocks > 0.0


def test_timed_and_rss_helpers():
    value, elapsed = timed(lambda: sum(range(1000)))
    assert value == sum(range(1000))
    assert elapsed >= 0.0
    assert peak_rss_kb() > 0.0
