"""Direct tests for cache statistics helpers and space lookups."""

from __future__ import annotations

import pytest

from repro.cache.consistency import InvalidationClass, InvalidationReason
from repro.cache.stats import CacheStats
from repro.errors import ReferenceNotFoundError
from repro.providers.memory import MemoryProvider


class TestCacheStatsHelpers:
    def test_invalidations_by_class_aggregates(self):
        stats = CacheStats()
        stats.record_invalidation(InvalidationReason.SOURCE_UPDATED_IN_BAND)
        stats.record_invalidation(InvalidationReason.OPENED_FOR_WRITE)
        stats.record_invalidation(InvalidationReason.PROPERTY_ADDED)
        stats.record_invalidation(InvalidationReason.EVICTED)
        by_class = stats.invalidations_by_class()
        assert by_class[InvalidationClass.SOURCE_MODIFIED] == 2
        assert by_class[InvalidationClass.PROPERTIES_CHANGED] == 1
        assert by_class[InvalidationClass.BOOKKEEPING] == 1

    def test_mean_latencies(self):
        stats = CacheStats(
            hits=2, hit_latency_ms=1.0, misses=4, miss_latency_ms=10.0
        )
        assert stats.mean_hit_latency_ms == pytest.approx(0.5)
        assert stats.mean_miss_latency_ms == pytest.approx(2.5)

    def test_means_zero_when_empty(self):
        stats = CacheStats()
        assert stats.mean_hit_latency_ms == 0.0
        assert stats.mean_miss_latency_ms == 0.0
        assert stats.hit_ratio == 0.0
        assert stats.staleness_ratio == 0.0

    def test_merged_empty_list(self):
        merged = CacheStats.merged([])
        assert merged.hits == 0

    def test_merged_three_way(self):
        parts = [CacheStats(hits=i, verifier_cost_ms=float(i)) for i in range(3)]
        merged = CacheStats.merged(parts)
        assert merged.hits == 3
        assert merged.verifier_cost_ms == pytest.approx(3.0)


class TestSpaceLookups:
    def test_reference_for_document(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"x"), "doc"
        )
        space = kernel.space(user)
        assert (
            space.reference_for_document(reference.base.document_id)
            is reference
        )

    def test_reference_for_unknown_document_raises(self, kernel, user):
        from repro.ids import DocumentId

        with pytest.raises(ReferenceNotFoundError):
            kernel.space(user).reference_for_document(DocumentId("none"))

    def test_get_unknown_reference_raises(self, kernel, user):
        from repro.ids import ReferenceId

        with pytest.raises(ReferenceNotFoundError):
            kernel.space(user).get(ReferenceId("none"))

    def test_describe_helpers(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"x"), "doc"
        )
        assert "doc" in reference.base.describe()
        assert "personal properties" in reference.describe()
