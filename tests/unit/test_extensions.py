"""Tests for the §4/§5 extensions: pinning, adoption, hierarchies,
placement, and external-dependency policy placement."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.cache.notifiers import InvalidationBus
from repro.cache.replacement import LRUPolicy
from repro.errors import CacheError, PropertyError
from repro.placeless.kernel import PlacelessKernel
from repro.properties.external import ExternalDependencyProperty
from repro.properties.qos import AlwaysAvailableProperty
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider
from repro.sim.topology import CachePlacement


def make_refs(kernel, user, count, size=100):
    return [
        kernel.import_document(
            user, MemoryProvider(kernel.ctx, bytes([65 + i]) * size), f"d{i}"
        )
        for i in range(count)
    ]


class TestPinning:
    def test_pinned_entry_survives_pressure(self, kernel, user):
        refs = make_refs(kernel, user, 5, size=100)
        refs[0].attach(AlwaysAvailableProperty())
        cache = DocumentCache(kernel, capacity_bytes=250, policy=LRUPolicy())
        cache.read(refs[0])
        assert cache.entry_for(refs[0]).pinned
        for ref in refs[1:]:
            cache.read(ref)
        # LRU would have evicted refs[0] long ago; pinning kept it.
        assert cache.entry_for(refs[0]) is not None
        assert cache.read(refs[0]).hit

    def test_pinned_entry_still_invalidated_by_writes(self, kernel, user,
                                                      other_user):
        provider = MemoryProvider(kernel.ctx, b"v1")
        base = kernel.create_document(user, provider, "doc")
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        mine.attach(AlwaysAvailableProperty())
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(mine)
        cache.write(theirs, b"v2")
        outcome = cache.read(mine)
        assert not outcome.hit
        assert b"v2" in outcome.content

    def test_all_pinned_and_over_capacity_raises(self, kernel, user):
        refs = make_refs(kernel, user, 4, size=100)
        for ref in refs:
            ref.attach(AlwaysAvailableProperty())
        cache = DocumentCache(kernel, capacity_bytes=250)
        cache.read(refs[0])
        cache.read(refs[1])
        with pytest.raises(CacheError):
            cache.read(refs[2])


class TestAdoption:
    @pytest.fixture
    def shared_doc(self, kernel, user, other_user):
        provider = MemoryProvider(kernel.ctx, b"the world document")
        base = kernel.create_document(user, provider, "doc")
        mine = kernel.space(user).add_reference(base)
        theirs = kernel.space(other_user).add_reference(base)
        return provider, base, mine, theirs

    def test_identical_chains_adopt(self, kernel, shared_doc):
        provider, base, mine, theirs = shared_doc
        mine.attach(TranslationProperty())
        theirs.attach(TranslationProperty())
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        first = cache.read(mine)
        second = cache.read(theirs)
        assert second.disposition == "miss-adopted"
        assert second.content == first.content
        assert second.elapsed_ms < first.elapsed_ms / 3
        assert cache.stats.sibling_adoptions == 1
        assert kernel.stats.reads == 1  # only one full path ran

    def test_plain_references_adopt(self, kernel, shared_doc):
        provider, base, mine, theirs = shared_doc
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        assert cache.read(theirs).disposition == "miss-adopted"

    def test_different_chains_do_not_adopt(self, kernel, shared_doc):
        provider, base, mine, theirs = shared_doc
        mine.attach(TranslationProperty())
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        outcome = cache.read(theirs)
        assert outcome.disposition == "miss"
        assert cache.stats.sibling_adoptions == 0

    def test_stale_candidate_not_adopted(self, kernel, shared_doc):
        provider, base, mine, theirs = shared_doc
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        provider.mutate_out_of_band(b"changed behind the cache")
        outcome = cache.read(theirs)
        assert outcome.disposition == "miss"
        assert outcome.content == b"changed behind the cache"

    def test_adoption_disabled_by_default(self, kernel, shared_doc):
        provider, base, mine, theirs = shared_doc
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        cache.read(mine)
        assert cache.read(theirs).disposition == "miss"

    def test_adopted_entry_hits_afterwards(self, kernel, shared_doc):
        provider, base, mine, theirs = shared_doc
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        cache.read(theirs)
        assert cache.read(theirs).hit

    def test_adoption_shares_bytes(self, kernel, shared_doc):
        provider, base, mine, theirs = shared_doc
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(mine)
        cache.read(theirs)
        assert len(cache) == 2
        assert len(cache.store) == 1
        assert cache.store.refcount(cache.entry_for(mine).signature) == 2


class TestHierarchy:
    @pytest.fixture
    def two_level(self, kernel, user):
        bus = InvalidationBus(kernel.ctx)
        l2 = DocumentCache(
            kernel, capacity_bytes=1 << 20, bus=bus,
            placement=CachePlacement.SERVER_COLOCATED, name="l2",
        )
        l1 = DocumentCache(
            kernel, capacity_bytes=1 << 20, bus=bus,
            placement=CachePlacement.APPLICATION_LEVEL,
            backing=l2, name="l1",
        )
        refs = make_refs(kernel, user, 3)
        return l1, l2, refs

    def test_miss_fills_both_levels(self, two_level):
        l1, l2, refs = two_level
        l1.read(refs[0])
        assert l1.entry_for(refs[0]) is not None
        assert l2.entry_for(refs[0]) is not None
        assert l1.stats.misses == 1 and l2.stats.misses == 1

    def test_l1_hit_does_not_touch_l2(self, two_level):
        l1, l2, refs = two_level
        l1.read(refs[0])
        l1.read(refs[0])
        assert l1.stats.hits == 1
        assert l2.stats.lookups == 1  # only the original fill

    def test_l2_serves_after_l1_eviction(self, kernel, user):
        bus = InvalidationBus(kernel.ctx)
        l2 = DocumentCache(kernel, capacity_bytes=1 << 20, bus=bus, name="l2")
        l1 = DocumentCache(
            kernel, capacity_bytes=250, bus=bus, backing=l2,
            policy=LRUPolicy(), name="l1",
        )
        refs = make_refs(kernel, user, 4, size=100)
        for ref in refs:
            l1.read(ref)
        # refs[0] was evicted from L1 but lives in L2.
        assert l1.entry_for(refs[0]) is None
        assert l2.entry_for(refs[0]) is not None
        kernel_reads_before = kernel.stats.reads
        outcome = l1.read(refs[0])
        assert not outcome.hit            # L1 missed...
        assert l2.stats.hits == 1         # ...but L2 served it
        assert kernel.stats.reads == kernel_reads_before

    def test_hierarchy_consistency(self, two_level, kernel, other_user):
        l1, l2, refs = two_level
        l1.read(refs[0])
        theirs = kernel.space(other_user).add_reference(refs[0].base)
        kernel.write(theirs, b"rewritten by bob")
        outcome = l1.read(refs[0])
        assert not outcome.hit
        assert outcome.content == b"rewritten by bob"


class TestPlacementLatency:
    def test_server_colocated_hits_cost_more(self, kernel, user):
        refs = make_refs(kernel, user, 1, size=1000)
        app = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            placement=CachePlacement.APPLICATION_LEVEL, name="app",
        )
        server = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            placement=CachePlacement.SERVER_COLOCATED, name="srv",
        )
        app.read(refs[0])
        server.read(refs[0])
        app_hit = app.read(refs[0]).elapsed_ms
        server_hit = server.read(refs[0]).elapsed_ms
        assert server_hit > app_hit


class TestExternalDependencyProperty:
    def test_verifier_mode_catches_change(self, kernel, user):
        value = [1]
        ref = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"body"), "doc"
        )
        ref.attach(
            ExternalDependencyProperty(lambda: value[0], mode="verifier")
        )
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        first = cache.read(ref)
        assert b"[external=1]" in first.content
        assert cache.read(ref).hit
        value[0] = 2
        outcome = cache.read(ref)
        assert not outcome.hit
        assert b"[external=2]" in outcome.content

    def test_notifier_mode_invalidates_on_poll(self, kernel, user):
        value = [1]
        ref = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"body"), "doc"
        )
        bus = InvalidationBus(kernel.ctx)
        cache = DocumentCache(kernel, capacity_bytes=1 << 20, bus=bus)
        prop = ExternalDependencyProperty(
            lambda: value[0], mode="notifier",
            timers=kernel.timers, bus=bus, cache_id=cache.cache_id,
            poll_period_ms=100.0,
        )
        ref.attach(prop)
        cache.read(ref)
        value[0] = 2
        assert cache.read(ref).hit  # notifier hasn't polled yet: stale hit
        kernel.ctx.clock.advance(150.0)  # poll fires
        assert prop.invalidations_pushed == 1
        outcome = cache.read(ref)
        assert not outcome.hit
        assert b"[external=2]" in outcome.content

    def test_notifier_mode_requires_plumbing(self):
        with pytest.raises(PropertyError):
            ExternalDependencyProperty(lambda: 1, mode="notifier")

    def test_unknown_mode_rejected(self):
        with pytest.raises(PropertyError):
            ExternalDependencyProperty(lambda: 1, mode="psychic")

    def test_detach_stops_polling(self, kernel, user):
        value = [1]
        ref = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"body"), "doc"
        )
        bus = InvalidationBus(kernel.ctx)
        cache = DocumentCache(kernel, capacity_bytes=1 << 20, bus=bus)
        prop = ExternalDependencyProperty(
            lambda: value[0], mode="notifier",
            timers=kernel.timers, bus=bus, cache_id=cache.cache_id,
            poll_period_ms=100.0,
        )
        ref.attach(prop)
        ref.detach(prop)
        value[0] = 2
        kernel.ctx.clock.advance(500.0)
        assert prop.invalidations_pushed == 0
