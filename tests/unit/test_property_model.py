"""Tests for the property model and the property-holder chain semantics."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicatePropertyError,
    PropertyNotFoundError,
    PropertyOrderError,
)
from repro.events.types import Event, EventType
from repro.placeless.properties import (
    ActiveProperty,
    AttachmentSite,
    StaticProperty,
)
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider


class RecordingProperty(ActiveProperty):
    """Test double: records every event it is dispatched."""

    transforms_reads = True

    def __init__(self, name="recorder", events=None):
        super().__init__(name)
        self._events = events or {EventType.GET_INPUT_STREAM}
        self.seen: list[Event] = []

    def events_of_interest(self):
        return set(self._events)

    def handle(self, event):
        self.seen.append(event)


@pytest.fixture
def base(kernel, user):
    return kernel.create_document(user, MemoryProvider(kernel.ctx, b"doc"), "d")


@pytest.fixture
def reference(kernel, user, base):
    return kernel.space(user).add_reference(base)


class TestStaticProperty:
    def test_not_active(self):
        prop = StaticProperty("budget related")
        assert not prop.is_active

    def test_carries_value(self):
        assert StaticProperty("read by", "11/30").value == "11/30"

    def test_describe(self):
        prop = StaticProperty("label")
        assert "static" in prop.describe()


class TestAttachment:
    def test_attach_binds_identity(self, base, user):
        prop = StaticProperty("label")
        base.attach(prop)
        assert prop.is_attached
        assert prop.property_id is not None
        assert prop.site is AttachmentSite.BASE
        assert prop.owner == user
        assert prop.attachment is base

    def test_attach_to_reference_site(self, reference):
        prop = StaticProperty("personal")
        reference.attach(prop)
        assert prop.site is AttachmentSite.REFERENCE

    def test_attach_twice_raises(self, base):
        prop = StaticProperty("label")
        base.attach(prop)
        with pytest.raises(DuplicatePropertyError):
            base.attach(prop)

    def test_detach_unbinds(self, base):
        prop = StaticProperty("label")
        base.attach(prop)
        base.detach(prop)
        assert not prop.is_attached
        assert not base.has_property("label")

    def test_detach_unattached_raises(self, base):
        with pytest.raises(PropertyNotFoundError):
            base.detach(StaticProperty("never"))

    def test_detach_by_name(self, base):
        base.attach(StaticProperty("x"))
        base.detach_by_name("x")
        assert len(base) == 0

    def test_find_property(self, base):
        prop = StaticProperty("needle")
        base.attach(StaticProperty("hay"))
        base.attach(prop)
        assert base.find_property("needle") is prop

    def test_find_missing_raises(self, base):
        with pytest.raises(PropertyNotFoundError):
            base.find_property("missing")

    def test_iteration_and_len(self, base):
        base.attach(StaticProperty("a"))
        base.attach(StaticProperty("b"))
        assert [p.name for p in base] == ["a", "b"]
        assert len(base) == 2

    def test_active_properties_filters_static(self, base):
        base.attach(StaticProperty("s"))
        active = RecordingProperty()
        base.attach(active)
        assert base.active_properties() == [active]


class TestLifecycleEvents:
    def test_attach_dispatches_set_property(self, base):
        watcher = RecordingProperty(events={EventType.SET_PROPERTY})
        base.attach(watcher)
        added = RecordingProperty(name="added")
        base.attach(added)
        assert len(watcher.seen) == 1
        payload = watcher.seen[0].payload
        assert payload["name"] == "added"
        assert payload["is_active"] is True
        assert payload["transforms_reads"] is True
        assert payload["infrastructure"] is False

    def test_static_attach_payload_flags(self, base):
        watcher = RecordingProperty(events={EventType.SET_PROPERTY})
        base.attach(watcher)
        base.attach(StaticProperty("label"))
        payload = watcher.seen[0].payload
        assert payload["is_active"] is False
        assert payload["transforms_reads"] is False

    def test_detach_dispatches_remove_property(self, base):
        watcher = RecordingProperty(events={EventType.REMOVE_PROPERTY})
        victim = StaticProperty("victim")
        base.attach(watcher)
        base.attach(victim)
        base.detach(victim)
        assert len(watcher.seen) == 1
        assert watcher.seen[0].payload["name"] == "victim"

    def test_detached_property_no_longer_dispatched(self, base, reference):
        prop = RecordingProperty()
        base.attach(prop)
        base.detach(prop)
        reference.open_input().read_all()
        assert prop.seen == []

    def test_upgrade_dispatches_modify_property(self, base):
        watcher = RecordingProperty(events={EventType.MODIFY_PROPERTY})
        target = RecordingProperty(name="target")
        base.attach(watcher)
        base.attach(target)
        target.upgrade()
        assert target.version == 2
        assert len(watcher.seen) == 1
        assert watcher.seen[0].payload["name"] == "target"

    def test_reorder_dispatches_and_validates(self, base):
        first = RecordingProperty(name="first")
        second = RecordingProperty(name="second")
        watcher = RecordingProperty(events={EventType.REORDER_PROPERTIES})
        base.attach(first)
        base.attach(second)
        base.attach(watcher)
        ids = [p.property_id for p in base.properties]
        base.reorder(list(reversed(ids)))
        assert [p.name for p in base.properties] == [
            "recorder", "second", "first",
        ]
        assert len(watcher.seen) == 1

    def test_reorder_partial_permutation_raises(self, base):
        first = RecordingProperty(name="first")
        base.attach(first)
        base.attach(RecordingProperty(name="second"))
        with pytest.raises(PropertyOrderError):
            base.reorder([first.property_id])


class TestTransformSignature:
    def test_non_transforming_has_no_signature(self):
        prop = RecordingProperty()
        prop.transforms_reads = False
        assert prop.transform_signature() is None

    def test_signature_includes_version(self):
        prop = RecordingProperty(name="t")
        before = prop.transform_signature()
        prop.version = 2
        assert prop.transform_signature() != before

    def test_default_bonus_is_zero(self):
        assert RecordingProperty().replacement_cost_bonus_ms() == 0.0
