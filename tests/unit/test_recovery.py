"""Unit tests for the consistency-recovery layer.

Covers the four mechanisms the recovery manager coordinates: sequenced
channels with inline gap detection, renewal-time checkpoint comparison
(trailing losses), AFS-style lease renewal/lapse with anti-entropy
resync attributed to the paper's consistency classes, and the
crash-recovery write-back journal.
"""

from __future__ import annotations

import pytest

from repro.cache.entry import EntryKey
from repro.cache.manager import DocumentCache
from repro.cache.pipeline import WriteMode
from repro.cache.policies import DefaultRecoveryPolicy
from repro.cache.recovery import NotifierLease, WriteBackJournal
from repro.errors import (
    CacheError,
    LeaseExpiredError,
    NotificationLostError,
    NotifierError,
)
from repro.faults.plan import FaultPlan, OutageWindow
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext

LEASE_MS = 2_000.0


class _DropPlan(FaultPlan):
    """Deterministically drop the first *n* notifier deliveries."""

    def __init__(self, clock, drops: int):
        super().__init__(clock)
        self.drops_left = drops

    def notifier_disposition(self, target):
        if self.drops_left > 0:
            self.drops_left -= 1
            self.stats.notifications_lost += 1
            self._record("bus", "drop", target)
            return "drop", 0.0
        return "deliver", 0.0


def _deployment(plan_factory=None, recovery=True, **cache_kwargs):
    ctx = SimContext()
    if plan_factory is not None:
        ctx.faults = plan_factory(ctx.clock)
    kernel = PlacelessKernel(ctx)
    reader = kernel.create_user("reader")
    writer = kernel.create_user("writer")
    provider = MemoryProvider(ctx, b"v1")
    reader_ref = kernel.import_document(reader, provider, "doc")
    writer_ref = kernel.space(writer).add_reference(reader_ref.base, "doc-w")
    cache_kwargs.setdefault("use_verifiers", False)
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 20,
        recovery_policy=(
            DefaultRecoveryPolicy(lease_term_ms=LEASE_MS)
            if recovery else None
        ),
        **cache_kwargs,
    )
    return kernel, cache, reader_ref, writer_ref, provider


class TestErrors:
    def test_notification_lost_is_a_notifier_error(self):
        assert issubclass(NotificationLostError, NotifierError)

    def test_lease_expired_is_a_cache_error(self):
        assert issubclass(LeaseExpiredError, CacheError)

    def test_lease_check_raises_after_expiry(self):
        lease = NotifierLease.grant(100.0, now_ms=0.0)
        lease.check(50.0)  # fine
        with pytest.raises(LeaseExpiredError):
            lease.check(100.0)

    def test_lease_renew_extends_expiry(self):
        lease = NotifierLease.grant(100.0, now_ms=0.0)
        lease.renew(80.0)
        lease.check(150.0)
        assert lease.expires_at_ms == 180.0


class TestSequencing:
    def test_bus_stamps_epoch_and_sequence(self):
        kernel, cache, reader_ref, writer_ref, _ = _deployment()
        cache.read(reader_ref)
        checkpoint = cache.bus.channel_checkpoint(cache.cache_id)
        assert checkpoint is not None and checkpoint[0] == 1
        kernel.write(writer_ref, b"v2")
        after = cache.bus.channel_checkpoint(cache.cache_id)
        # The write's notifications consumed sequence numbers.
        assert after[1] > checkpoint[1]

    def test_unsequenced_cache_gets_no_channel(self):
        kernel, cache, reader_ref, _, _ = _deployment(recovery=False)
        cache.read(reader_ref)
        assert cache.bus.channel_checkpoint(cache.cache_id) is None

    def test_inline_gap_detection_on_sequence_jump(self):
        kernel, cache, reader_ref, writer_ref, _ = _deployment(
            plan_factory=lambda clock: _DropPlan(clock, drops=1)
        )
        cache.read(reader_ref)
        # First notification dropped, the next delivered: the receiver
        # sees the sequence jump and flags the channel suspect.
        kernel.write(writer_ref, b"v2")
        stats = cache.recovery_stats
        assert stats.gaps_detected == 1
        assert stats.notifications_missed >= 1
        assert cache.recovery.suspect

    def test_dropped_sequence_numbers_are_consumed(self):
        kernel, cache, reader_ref, writer_ref, _ = _deployment(
            plan_factory=lambda clock: _DropPlan(clock, drops=10**9)
        )
        cache.read(reader_ref)
        expected_before = cache.recovery._expected
        kernel.write(writer_ref, b"v2")
        # Nothing arrived, so the receiver expectation is unchanged ...
        assert cache.recovery._expected == expected_before
        # ... but the send-side high-water mark moved on.
        checkpoint = cache.bus.channel_checkpoint(cache.cache_id)
        assert checkpoint[1] > expected_before[1]


class TestLeaseAndResync:
    def test_renewals_happen_at_half_term(self):
        kernel, cache, reader_ref, _, _ = _deployment()
        kernel.ctx.clock.advance(LEASE_MS * 2.5)
        assert cache.recovery_stats.lease_renewals >= 4
        assert cache.recovery_stats.lease_lapses == 0

    def test_partition_blocks_renewal_until_lapse_then_resyncs(self):
        kernel, cache, reader_ref, writer_ref, _ = _deployment(
            plan_factory=lambda clock: FaultPlan(
                clock, bus_outages=(OutageWindow(0.0, 3 * LEASE_MS),)
            )
        )
        cache.read(reader_ref)
        kernel.write(writer_ref, b"v2")  # swallowed by the partition
        assert cache.read(reader_ref).content == b"v1"  # provably stale
        kernel.ctx.clock.advance(3 * LEASE_MS)
        stats = cache.recovery_stats
        assert stats.lease_renewals_blocked >= 1
        assert stats.lease_lapses >= 1
        assert stats.resyncs >= 1
        assert cache.read(reader_ref).content == b"v2"

    def test_trailing_loss_caught_by_checkpoint_at_renewal(self):
        kernel, cache, reader_ref, writer_ref, _ = _deployment(
            plan_factory=lambda clock: _DropPlan(clock, drops=10**9)
        )
        cache.read(reader_ref)
        kernel.write(writer_ref, b"v2")  # every notification lost
        assert cache.read(reader_ref).content == b"v1"
        kernel.ctx.clock.advance(LEASE_MS)  # first renewal tick
        stats = cache.recovery_stats
        assert stats.checkpoint_gaps == 1
        assert stats.resyncs == 1
        assert cache.read(reader_ref).content == b"v2"

    def test_resync_attributes_source_change_to_class_1(self):
        kernel, cache, reader_ref, _, provider = _deployment()
        cache.read(reader_ref)
        provider.mutate_out_of_band(b"changed behind everyone's back")
        cache.resync()
        assert cache.recovery_stats.repairs_by_class == {1: 1}

    def test_resync_attributes_property_change_to_class_2(self):
        kernel, cache, reader_ref, _, _ = _deployment()
        cache.read(reader_ref)
        # Attaching a transforming property changes the chain signature;
        # suppress the notifier delivery so only the resync can see it.
        cache.bus.unregister(cache.cache_id)
        reader_ref.attach(TranslationProperty())
        assert cache.resync() == 1
        assert cache.recovery_stats.repairs_by_class == {2: 1}

    def test_resync_on_clean_cache_repairs_nothing(self):
        kernel, cache, reader_ref, _, _ = _deployment()
        cache.read(reader_ref)
        assert cache.resync() == 0
        assert cache.recovery_stats.repairs_by_class == {}
        # The entry survived the resync.
        assert len(cache) == 1

    def test_resync_bumps_the_channel_epoch(self):
        kernel, cache, reader_ref, _, _ = _deployment()
        cache.read(reader_ref)
        before = cache.bus.channel_checkpoint(cache.cache_id)
        cache.resync()
        after = cache.bus.channel_checkpoint(cache.cache_id)
        assert after == (before[0] + 1, 1)
        assert not cache.recovery.suspect

    def test_resync_requires_a_recovery_policy(self):
        kernel, cache, reader_ref, _, _ = _deployment(recovery=False)
        with pytest.raises(CacheError):
            cache.resync()


class TestJournal:
    def test_replay_restores_latest_unflushed_per_key(self):
        journal = WriteBackJournal()
        key = EntryKey("doc", "user")
        journal.append(key, "ref", b"first", 1.0)
        journal.append(key, "ref", b"second", 2.0)
        dirty = {}
        assert journal.replay_into(dirty) == (1, 0)
        assert dirty[key] == ("ref", b"second")

    def test_replay_is_idempotent(self):
        journal = WriteBackJournal()
        key = EntryKey("doc", "user")
        journal.append(key, "ref", b"bytes", 1.0)
        dirty = {}
        assert journal.replay_into(dirty) == (1, 0)
        assert journal.replay_into(dirty) == (0, 1)
        assert dirty[key] == ("ref", b"bytes")

    def test_mark_flushed_retires_all_records_for_the_key(self):
        journal = WriteBackJournal()
        key = EntryKey("doc", "user")
        journal.append(key, "ref", b"first", 1.0)
        journal.append(key, "ref", b"second", 2.0)
        assert journal.mark_flushed(key) == 2
        assert journal.replay_into({}) == (0, 0)


class TestCrashRestart:
    def _writeback(self, recovery=True):
        return _deployment(
            recovery=recovery, write_mode=WriteMode.WRITE_BACK
        )

    def test_acknowledged_write_survives_crash_byte_identically(self):
        kernel, cache, reader_ref, _, provider = self._writeback()
        cache.write(reader_ref, b"precious bytes")
        cache.crash()
        assert cache.dirty_count == 0
        assert cache.restart() == 1
        assert cache.dirty_count == 1
        cache.flush_all()
        assert provider.peek() == b"precious bytes"

    def test_flushed_write_is_not_replayed(self):
        kernel, cache, reader_ref, _, provider = self._writeback()
        cache.write(reader_ref, b"already safe")
        cache.flush(reader_ref)
        cache.crash()
        assert cache.restart() == 0

    def test_crash_without_journal_loses_unflushed_writes(self):
        kernel, cache, reader_ref, _, provider = self._writeback(
            recovery=False
        )
        cache.write(reader_ref, b"doomed")
        cache.crash()
        assert cache.restart() == 0
        assert cache.dirty_count == 0
        assert provider.peek() == b"v1"

    def test_crash_discards_entries_without_invalidation_traffic(self):
        kernel, cache, reader_ref, _, _ = self._writeback()
        cache.read(reader_ref)
        invalidations_before = dict(cache.stats.invalidations)
        cache.crash()
        assert len(cache) == 0
        assert cache.used_bytes == 0
        assert dict(cache.stats.invalidations) == invalidations_before

    def test_fault_plan_schedules_the_crash(self):
        ctx = SimContext()
        ctx.faults = FaultPlan(ctx.clock, cache_crashes=(500.0,))
        kernel = PlacelessKernel(ctx)
        user = kernel.create_user("u")
        reference = kernel.import_document(
            user, MemoryProvider(ctx, b"v1"), "doc"
        )
        cache = DocumentCache(
            kernel, 1 << 20, write_mode=WriteMode.WRITE_BACK,
            use_verifiers=False,
            recovery_policy=DefaultRecoveryPolicy(lease_term_ms=LEASE_MS),
        )
        cache.write(reference, b"ack")
        ctx.clock.advance(600.0)
        stats = cache.recovery_stats
        assert stats.crashes == 1 and stats.restarts == 1
        assert cache.dirty_count == 1  # replayed by the restart
        cache.flush_all()
        assert reference.base.provider.peek() == b"ack"

    def test_restart_resyncs_and_releases(self):
        kernel, cache, reader_ref, _, _ = self._writeback()
        cache.read(reader_ref)
        cache.crash()
        resyncs_before = cache.recovery_stats.resyncs
        cache.restart()
        assert cache.recovery_stats.resyncs == resyncs_before + 1
        # The cache is fully usable again after restart.
        assert cache.read(reader_ref).content == b"v1"


class TestDefaultOffEquivalence:
    def test_no_recovery_means_no_recovery_surface(self):
        kernel, cache, reader_ref, _, _ = _deployment(recovery=False)
        cache.read(reader_ref)
        assert cache.recovery is None
        assert cache.recovery_stats is None

    def test_recovery_stats_never_touch_cache_stats(self):
        kernel, cache, reader_ref, writer_ref, _ = _deployment(
            plan_factory=lambda clock: _DropPlan(clock, drops=10**9)
        )
        cache.read(reader_ref)
        kernel.write(writer_ref, b"v2")
        kernel.ctx.clock.advance(LEASE_MS)
        # Recovery machinery ran (checkpoint gap + resync) ...
        assert cache.recovery_stats.resyncs >= 1
        # ... and CacheStats still has no recovery fields at all.
        assert not any(
            "lease" in name or "resync" in name or "journal" in name
            for name in vars(cache.stats)
        )
