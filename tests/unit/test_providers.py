"""Tests for every bit-provider over its simulated repository."""

from __future__ import annotations

import pytest

from repro.cache.cacheability import Cacheability
from repro.cache.verifiers import CompositeVerifier, Verdict
from repro.errors import ContentUnavailableError, ProviderError
from repro.providers.composite import CompositeProvider
from repro.providers.dms import DMSProvider, DocumentManagementSystem
from repro.providers.filesystem import FileSystemProvider
from repro.providers.live import LiveFeedProvider
from repro.providers.memory import MemoryProvider
from repro.providers.simfs import SimulatedFileSystem
from repro.providers.web import WebOrigin, WebProvider
from repro.sim.context import SimContext


@pytest.fixture
def ctx():
    return SimContext()


class TestMemoryProvider:
    def test_fetch_returns_content_and_charges(self, ctx):
        provider = MemoryProvider(ctx, b"hello")
        before = ctx.clock.now_ms
        fetch = provider.fetch()
        assert fetch.content == b"hello"
        assert ctx.clock.now_ms > before
        assert fetch.retrieval_cost_ms > 0

    def test_store_updates_content_and_generation(self, ctx):
        provider = MemoryProvider(ctx, b"v1")
        provider.store(b"v2")
        assert provider.peek() == b"v2"
        assert provider.generation == 1

    def test_verifier_catches_out_of_band_change(self, ctx):
        provider = MemoryProvider(ctx, b"v1")
        verifier = provider.make_verifier()
        assert verifier.run(0.0, b"").verdict is Verdict.VALID
        provider.mutate_out_of_band(b"v2")
        assert verifier.run(0.0, b"").verdict is Verdict.INVALID

    def test_peek_does_not_charge_or_count(self, ctx):
        provider = MemoryProvider(ctx, b"v1")
        before = ctx.clock.now_ms
        provider.peek()
        assert ctx.clock.now_ms == before
        assert provider.fetch_count == 0

    def test_in_band_store_notifies_listeners(self, ctx):
        provider = MemoryProvider(ctx, b"v1")
        seen = []
        provider.on_update(seen.append)
        provider.store(b"v2")
        assert seen == [b"v2"]

    def test_out_of_band_does_not_notify(self, ctx):
        provider = MemoryProvider(ctx, b"v1")
        seen = []
        provider.on_update(seen.append)
        provider.mutate_out_of_band(b"v2")
        assert seen == []

    def test_open_input_streams_fetch(self, ctx):
        provider = MemoryProvider(ctx, b"stream me")
        assert provider.open_input().read(-1) == b"stream me"

    def test_estimated_cost_matches_model(self, ctx):
        provider = MemoryProvider(ctx, b"x" * 2048)
        estimate = provider.estimated_retrieval_cost_ms()
        assert estimate == pytest.approx(
            ctx.latency.repository_cost_ms("memory", 2048)
        )


class TestFileSystemProvider:
    def test_roundtrip(self, ctx):
        fs = SimulatedFileSystem(ctx.clock)
        fs.write("/doc", b"file content")
        provider = FileSystemProvider(ctx, fs, "/doc")
        assert provider.fetch().content == b"file content"
        provider.store(b"updated")
        assert fs.read("/doc") == b"updated"

    def test_verifier_polls_mtime(self, ctx):
        fs = SimulatedFileSystem(ctx.clock)
        fs.write("/doc", b"v1")
        provider = FileSystemProvider(ctx, fs, "/doc")
        verifier = provider.make_verifier()
        assert verifier.run(0.0, b"").verdict is Verdict.VALID
        ctx.clock.advance(5.0)
        fs.write("/doc", b"v2")  # direct filesystem write = out of band
        assert verifier.run(0.0, b"").verdict is Verdict.INVALID

    def test_repository_is_nfs(self, ctx):
        fs = SimulatedFileSystem(ctx.clock)
        fs.write("/doc", b"x")
        assert FileSystemProvider(ctx, fs, "/doc").repository_name == "nfs"


class TestWebProvider:
    def test_get_serves_published_page(self, ctx):
        origin = WebOrigin(ctx.clock, host="www")
        origin.publish("/page", b"<html>", ttl_ms=1000.0)
        provider = WebProvider(ctx, origin, "/page")
        assert provider.fetch().content == b"<html>"

    def test_missing_page_raises(self, ctx):
        origin = WebOrigin(ctx.clock)
        provider = WebProvider(ctx, origin, "/nope")
        with pytest.raises(ContentUnavailableError):
            provider.fetch()

    def test_repository_name_follows_host(self, ctx):
        origin = WebOrigin(ctx.clock, host="parcweb")
        assert WebProvider(ctx, origin, "/x").repository_name == "parcweb"

    def test_ttl_verifier_expires(self, ctx):
        origin = WebOrigin(ctx.clock, host="www")
        origin.publish("/page", b"x", ttl_ms=500.0)
        provider = WebProvider(ctx, origin, "/page")
        verifier = provider.fetch().verifier
        assert verifier.run(ctx.clock.now_ms, b"").verdict is Verdict.VALID
        ctx.clock.advance(600.0)
        assert verifier.run(ctx.clock.now_ms, b"").verdict is Verdict.INVALID

    def test_put_is_in_band(self, ctx):
        origin = WebOrigin(ctx.clock, host="www")
        origin.publish("/page", b"old")
        provider = WebProvider(ctx, origin, "/page")
        seen = []
        provider.on_update(seen.append)
        provider.store(b"new")
        assert origin.get("/page").content == b"new"
        assert origin.get("/page").puts == 1
        assert seen == [b"new"]

    def test_author_edit_is_out_of_band(self, ctx):
        origin = WebOrigin(ctx.clock, host="www")
        origin.publish("/page", b"old")
        ctx.clock.advance(10.0)
        origin.author_edit("/page", b"new")
        record = origin.get("/page")
        assert record.content == b"new"
        assert record.last_modified_ms == 10.0
        assert record.puts == 0

    def test_urls_listing(self, ctx):
        origin = WebOrigin(ctx.clock)
        origin.publish("/b", b"")
        origin.publish("/a", b"")
        assert origin.urls() == ["/a", "/b"]


class TestLiveFeedProvider:
    def test_every_fetch_differs(self, ctx):
        provider = LiveFeedProvider(ctx)
        first = provider.fetch().content
        second = provider.fetch().content
        assert first != second
        assert provider.frames_served == 2

    def test_votes_uncacheable(self, ctx):
        provider = LiveFeedProvider(ctx)
        assert provider.fetch().cacheability is Cacheability.UNCACHEABLE

    def test_cannot_store(self, ctx):
        with pytest.raises(ProviderError):
            LiveFeedProvider(ctx).store(b"frame")

    def test_custom_frame_source(self, ctx):
        provider = LiveFeedProvider(
            ctx, frame_source=lambda now, n: f"{n}".encode()
        )
        assert provider.fetch().content == b"1"


class TestCompositeProvider:
    def test_composes_parts(self, ctx):
        parts = [MemoryProvider(ctx, b"alpha"), MemoryProvider(ctx, b"beta")]
        provider = CompositeProvider(ctx, parts)
        content = provider.fetch().content
        assert b"alpha" in content and b"beta" in content

    def test_custom_composer(self, ctx):
        parts = [MemoryProvider(ctx, b"a"), MemoryProvider(ctx, b"b")]
        provider = CompositeProvider(
            ctx, parts, composer=lambda contents: b"|".join(contents)
        )
        assert provider.fetch().content == b"a|b"

    def test_verifier_is_composite_over_parts(self, ctx):
        parts = [MemoryProvider(ctx, b"a"), MemoryProvider(ctx, b"b")]
        provider = CompositeProvider(ctx, parts)
        fetch = provider.fetch()
        assert isinstance(fetch.verifier, CompositeVerifier)
        assert fetch.verifier.run(0.0, b"").verdict is Verdict.VALID
        parts[1].mutate_out_of_band(b"changed")
        assert fetch.verifier.run(0.0, b"").verdict is Verdict.INVALID

    def test_cost_sums_parts(self, ctx):
        parts = [MemoryProvider(ctx, b"a" * 1024), MemoryProvider(ctx, b"b" * 1024)]
        provider = CompositeProvider(ctx, parts)
        fetch = provider.fetch()
        assert fetch.retrieval_cost_ms == pytest.approx(
            sum(ctx.latency.repository_cost_ms("memory", 1024) for _ in parts)
        )

    def test_uncacheable_part_dominates(self, ctx):
        parts = [MemoryProvider(ctx, b"a"), LiveFeedProvider(ctx)]
        provider = CompositeProvider(ctx, parts)
        assert provider.fetch().cacheability is Cacheability.UNCACHEABLE

    def test_empty_parts_raises(self, ctx):
        with pytest.raises(ProviderError):
            CompositeProvider(ctx, [])

    def test_cannot_store(self, ctx):
        provider = CompositeProvider(ctx, [MemoryProvider(ctx, b"a")])
        with pytest.raises(ProviderError):
            provider.store(b"x")


class TestDMS:
    def test_create_and_head(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"v1")
        assert dms.head("spec") == b"v1"
        assert dms.head_version("spec") == 1

    def test_duplicate_create_raises(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"")
        with pytest.raises(ProviderError):
            dms.create("spec", b"")

    def test_checkin_appends_version(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"v1")
        dms.checkout("spec", "alice")
        number = dms.checkin("spec", "alice", b"v2")
        assert number == 2
        assert dms.version("spec", 1) == b"v1"
        assert dms.version("spec", 2) == b"v2"

    def test_lock_excludes_other_users(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"v1")
        dms.checkout("spec", "alice")
        with pytest.raises(ProviderError):
            dms.checkout("spec", "bob")
        with pytest.raises(ProviderError):
            dms.checkin("spec", "bob", b"evil")

    def test_checkin_releases_lock(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"v1")
        dms.checkout("spec", "alice")
        dms.checkin("spec", "alice", b"v2")
        dms.checkout("spec", "bob")  # no longer locked

    def test_unknown_document_raises(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        with pytest.raises(ContentUnavailableError):
            dms.head("missing")

    def test_bad_version_raises(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"v1")
        with pytest.raises(ContentUnavailableError):
            dms.version("spec", 2)

    def test_provider_serves_head_and_checks_in(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"v1")
        provider = DMSProvider(ctx, dms, "spec")
        assert provider.fetch().content == b"v1"
        provider.store(b"v2")
        assert dms.head_version("spec") == 2

    def test_provider_verifier_tracks_versions(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("spec", b"v1")
        provider = DMSProvider(ctx, dms, "spec")
        verifier = provider.make_verifier()
        assert verifier.run(0.0, b"").verdict is Verdict.VALID
        dms.checkout("spec", "author")
        dms.checkin("spec", "author", b"v2")
        assert verifier.run(0.0, b"").verdict is Verdict.INVALID

    def test_documents_listing(self, ctx):
        dms = DocumentManagementSystem(ctx.clock)
        dms.create("b", b"")
        dms.create("a", b"")
        assert dms.documents() == ["a", "b"]
