"""sim/topology primitives: access paths and cluster shard links."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.sim.context import SimContext
from repro.sim.latency import DEFAULT_HOPS, HopCost, LatencyModel
from repro.sim.topology import CachePlacement, ClusterTopology, Topology


class TestTopologyPaths:
    def test_application_level_paths(self):
        topology = Topology(placement=CachePlacement.APPLICATION_LEVEL)
        assert topology.hit_path() == ["local"]
        assert topology.fetch_path() == [
            "app-to-reference",
            "reference-to-base",
            "base-to-repository",
        ]
        assert topology.notifier_path() == [
            "reference-to-base",
            "app-to-reference",
        ]

    def test_server_colocated_paths(self):
        topology = Topology(placement=CachePlacement.SERVER_COLOCATED)
        assert topology.hit_path() == ["app-to-reference"]
        assert topology.notifier_path() == ["reference-to-base"]
        # The miss path is placement-independent.
        assert topology.fetch_path() == (
            Topology(
                placement=CachePlacement.APPLICATION_LEVEL
            ).fetch_path()
        )

    def test_every_named_hop_is_priced(self):
        latency = LatencyModel()
        topology = Topology()
        for hop in (
            topology.hit_path()
            + topology.fetch_path()
            + topology.notifier_path()
        ):
            assert latency.hop_cost_ms(hop, 1024) > 0.0

    def test_shard_link_hop_is_priced_by_default(self):
        assert "shard-to-shard" in DEFAULT_HOPS
        assert LatencyModel().hop_cost_ms("shard-to-shard", 1024) > 0.0


class TestClusterTopology:
    def test_add_and_remove_shards(self):
        topology = ClusterTopology(shards=["a"])
        topology.add_shard("b")
        assert topology.shards == ["a", "b"]
        with pytest.raises(WorkloadError):
            topology.add_shard("a")
        topology.remove_shard("b")
        assert topology.shards == ["a"]
        with pytest.raises(WorkloadError):
            topology.remove_shard("b")

    def test_link_path_default_and_local(self):
        topology = ClusterTopology(shards=["a", "b"])
        assert topology.link_path("a", "a") == []
        assert topology.link_path("a", "b") == ["shard-to-shard"]

    def test_set_link_is_symmetric_and_validated(self):
        topology = ClusterTopology(shards=["a", "b", "c"])
        cost = HopCost(fixed_ms=5.0, per_kb_ms=1.0)
        topology.set_link("a", "b", cost)
        link = ClusterTopology.link_name("a", "b")
        assert topology.link_path("a", "b") == [link]
        assert topology.link_path("b", "a") == [link]
        # Unrelated pairs still use the default hop.
        assert topology.link_path("a", "c") == ["shard-to-shard"]
        with pytest.raises(WorkloadError):
            topology.set_link("a", "nope", cost)

    def test_install_registers_override_hops(self):
        topology = ClusterTopology(shards=["a", "b"])
        topology.set_link("a", "b", HopCost(fixed_ms=5.0, per_kb_ms=0.0))
        ctx = SimContext()
        link = ClusterTopology.link_name("a", "b")
        with pytest.raises(WorkloadError):
            ctx.latency.hop_cost_ms(link, 0)
        topology.install(ctx.latency)
        before = ctx.clock.now_ms
        ctx.charge_hop(link, 0)
        assert ctx.clock.now_ms == pytest.approx(before + 5.0)

    def test_custom_default_link(self):
        topology = ClusterTopology(
            shards=["a", "b"], default_link="local"
        )
        assert topology.link_path("a", "b") == ["local"]
