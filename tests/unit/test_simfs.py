"""Tests for the simulated filer."""

from __future__ import annotations

import pytest

from repro.errors import ContentUnavailableError, ProviderError
from repro.providers.simfs import SimulatedFileSystem
from repro.sim.clock import VirtualClock


@pytest.fixture
def fs():
    return SimulatedFileSystem(VirtualClock())


class TestWriteRead:
    def test_write_then_read(self, fs):
        fs.write("/a/b.txt", b"content")
        assert fs.read("/a/b.txt") == b"content"

    def test_write_replaces(self, fs):
        fs.write("/f", b"one")
        fs.write("/f", b"two")
        assert fs.read("/f") == b"two"

    def test_append_creates_and_extends(self, fs):
        fs.append("/log", b"a")
        fs.append("/log", b"b")
        assert fs.read("/log") == b"ab"

    def test_read_missing_raises(self, fs):
        with pytest.raises(ContentUnavailableError):
            fs.read("/missing")

    def test_paths_are_normalized(self, fs):
        fs.write("//a///b.txt/", b"x")
        assert fs.read("/a/b.txt") == b"x"
        assert fs.exists("a/b.txt")

    def test_empty_path_raises(self, fs):
        with pytest.raises(ProviderError):
            fs.write("", b"x")


class TestTimestamps:
    def test_mtime_tracks_clock(self):
        clock = VirtualClock()
        fs = SimulatedFileSystem(clock)
        fs.write("/f", b"v1")
        clock.advance(100.0)
        fs.write("/f", b"v2")
        assert fs.mtime_ms("/f") == 100.0

    def test_ctime_preserved_across_writes(self):
        clock = VirtualClock()
        fs = SimulatedFileSystem(clock)
        fs.write("/f", b"v1")
        clock.advance(50.0)
        fs.write("/f", b"v2")
        record = fs.stat("/f")
        assert record.ctime_ms == 0.0
        assert record.writes == 2

    def test_stat_size(self, fs):
        fs.write("/f", b"12345")
        assert fs.stat("/f").size == 5


class TestNamespace:
    def test_mkdir_and_is_dir(self, fs):
        fs.mkdir("/x/y/z")
        assert fs.is_dir("/x")
        assert fs.is_dir("/x/y")
        assert fs.is_dir("/x/y/z")

    def test_root_is_dir(self, fs):
        assert fs.is_dir("/")

    def test_write_creates_parent_dirs(self, fs):
        fs.write("/deep/nested/file", b"x")
        assert fs.is_dir("/deep/nested")

    def test_listdir_immediate_children_only(self, fs):
        fs.write("/d/one", b"")
        fs.write("/d/two", b"")
        fs.write("/d/sub/three", b"")
        assert fs.listdir("/d") == ["one", "sub", "two"]

    def test_listdir_root(self, fs):
        fs.write("/top", b"")
        assert "top" in fs.listdir("/")

    def test_listdir_missing_raises(self, fs):
        with pytest.raises(ContentUnavailableError):
            fs.listdir("/nowhere")

    def test_remove(self, fs):
        fs.write("/f", b"x")
        fs.remove("/f")
        assert not fs.exists("/f")

    def test_remove_missing_raises(self, fs):
        with pytest.raises(ContentUnavailableError):
            fs.remove("/f")

    def test_rename_preserves_record(self):
        clock = VirtualClock()
        fs = SimulatedFileSystem(clock)
        fs.write("/old", b"data")
        clock.advance(10.0)
        fs.rename("/old", "/new/location")
        assert not fs.exists("/old")
        assert fs.read("/new/location") == b"data"
        assert fs.mtime_ms("/new/location") == 0.0  # rename keeps mtime

    def test_rename_missing_raises(self, fs):
        with pytest.raises(ContentUnavailableError):
            fs.rename("/a", "/b")

    def test_files_sorted(self, fs):
        fs.write("/b", b"")
        fs.write("/a", b"")
        assert fs.files() == ["/a", "/b"]

    def test_total_bytes(self, fs):
        fs.write("/a", b"xx")
        fs.write("/b", b"yyy")
        assert fs.total_bytes == 5
