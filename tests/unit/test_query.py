"""Tests for property-based document queries."""

from __future__ import annotations

import pytest

from repro.placeless.collection import DocumentCollection
from repro.placeless.properties import StaticProperty
from repro.placeless.query import (
    HasProperty,
    IsActive,
    NameMatches,
    Predicate,
    PropertyValue,
)
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider


@pytest.fixture
def library(kernel, user):
    """Five documents with varied property labels."""
    refs = {}
    for name in ("budget", "draft", "report", "memo", "video"):
        refs[name] = kernel.import_document(
            user, MemoryProvider(kernel.ctx, name.encode()), name
        )
    refs["budget"].attach(StaticProperty("budget related"))
    refs["budget"].attach(StaticProperty("fiscal-year", 1999))
    refs["draft"].attach(StaticProperty("1999 workshop submission"))
    refs["draft"].attach(TranslationProperty())
    refs["report"].attach(StaticProperty("budget related"))
    refs["report"].attach(StaticProperty("fiscal-year", 2000))
    refs["memo"].attach(StaticProperty("read by", "11/30"))
    space = kernel.space(user)
    return refs, space


class TestAtoms:
    def test_has_property(self, library):
        refs, space = library
        found = HasProperty("budget related").run(space)
        assert set(found) == {refs["budget"], refs["report"]}

    def test_has_property_sees_universal_properties(self, library, kernel,
                                                    other_user):
        refs, space = library
        refs["memo"].base.attach(StaticProperty("universal-label"))
        other_ref = kernel.space(other_user).add_reference(refs["memo"].base)
        found = HasProperty("universal-label").run(kernel.space(other_user))
        assert found == [other_ref]

    def test_property_value(self, library):
        refs, space = library
        found = PropertyValue("fiscal-year", 1999).run(space)
        assert found == [refs["budget"]]

    def test_property_value_mismatch(self, library):
        refs, space = library
        assert PropertyValue("fiscal-year", 2024).run(space) == []

    def test_name_matches_glob(self, library):
        refs, space = library
        found = NameMatches("*workshop*").run(space)
        assert found == [refs["draft"]]

    def test_is_active(self, library):
        refs, space = library
        found = IsActive().run(space)
        assert found == [refs["draft"]]

    def test_is_active_ignores_infrastructure(self, library, kernel):
        from repro.events.recorder import EventRecorder

        refs, space = library
        refs["memo"].attach(EventRecorder())
        assert refs["memo"] not in IsActive().run(space)

    def test_predicate_escape_hatch(self, library):
        refs, space = library
        big_chains = Predicate(lambda ref: len(ref.properties) >= 2)
        found = big_chains.run(space)
        assert set(found) == {refs["budget"], refs["draft"], refs["report"]}


class TestCombinators:
    def test_and(self, library):
        refs, space = library
        query = HasProperty("budget related") & PropertyValue(
            "fiscal-year", 2000
        )
        assert query.run(space) == [refs["report"]]

    def test_or(self, library):
        refs, space = library
        query = HasProperty("read by") | HasProperty("1999 workshop submission")
        assert set(query.run(space)) == {refs["memo"], refs["draft"]}

    def test_not(self, library):
        refs, space = library
        query = ~HasProperty("budget related")
        found = set(query.run(space))
        assert refs["budget"] not in found
        assert refs["video"] in found

    def test_de_morgan(self, library):
        refs, space = library
        a = HasProperty("budget related")
        b = IsActive()
        lhs = set((~(a | b)).run(space))
        rhs = set(((~a) & (~b)).run(space))
        assert lhs == rhs

    def test_nested_composition(self, library):
        refs, space = library
        query = (HasProperty("budget related") | IsActive()) & ~PropertyValue(
            "fiscal-year", 1999
        )
        assert set(query.run(space)) == {refs["report"], refs["draft"]}


class TestQueryCollections:
    def test_collection_from_query(self, library):
        refs, space = library
        collection = DocumentCollection.from_query(
            "budget-docs", space, HasProperty("budget related")
        )
        assert set(collection.members()) == {refs["budget"], refs["report"]}
        assert collection.owner == space.owner
