"""Tests for the invalidation bus, notifier properties and the minimum set."""

from __future__ import annotations

import pytest

from repro.cache.consistency import Invalidation, InvalidationReason
from repro.cache.notifiers import (
    InvalidationBus,
    NotifierProperty,
    install_minimum_notifiers,
)
from repro.errors import NotifierError
from repro.events.types import EventType
from repro.placeless.properties import StaticProperty
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider


@pytest.fixture
def world(kernel, user, other_user):
    provider = MemoryProvider(kernel.ctx, b"shared doc")
    base = kernel.create_document(user, provider, "doc")
    mine = kernel.space(user).add_reference(base)
    theirs = kernel.space(other_user).add_reference(base)
    bus = InvalidationBus(kernel.ctx)
    return kernel, base, mine, theirs, bus


def collect(bus, kernel, name="sink"):
    cache_id = kernel.ctx.ids.cache(name)
    received = []
    bus.register(cache_id, received.append)
    return cache_id, received


class TestInvalidationBus:
    def test_delivers_to_registered_sink(self, world):
        kernel, base, _, _, bus = world
        cache_id, received = collect(bus, kernel)
        invalidation = Invalidation(
            InvalidationReason.EXPLICIT, base.document_id
        )
        bus.deliver(cache_id, invalidation)
        assert received == [invalidation]
        assert bus.stats.deliveries == 1
        assert bus.stats.delivery_cost_ms > 0

    def test_unknown_sink_drops(self, world):
        kernel, base, _, _, bus = world
        bus.deliver(
            kernel.ctx.ids.cache("ghost"),
            Invalidation(InvalidationReason.EXPLICIT, base.document_id),
        )
        assert bus.stats.dropped == 1
        assert bus.stats.deliveries == 0

    def test_unregister_stops_delivery(self, world):
        kernel, base, _, _, bus = world
        cache_id, received = collect(bus, kernel)
        bus.unregister(cache_id)
        bus.deliver(
            cache_id,
            Invalidation(InvalidationReason.EXPLICIT, base.document_id),
        )
        assert received == []

    def test_delivery_charges_clock(self, world):
        kernel, base, _, _, bus = world
        cache_id, _ = collect(bus, kernel)
        before = kernel.ctx.clock.now_ms
        bus.deliver(
            cache_id,
            Invalidation(InvalidationReason.EXPLICIT, base.document_id),
        )
        assert kernel.ctx.clock.now_ms > before


class TestNotifierProperty:
    def test_fires_on_watched_event(self, world):
        kernel, base, mine, _, bus = world
        cache_id, received = collect(bus, kernel)
        notifier = NotifierProperty(
            bus, cache_id, watch={EventType.CONTENT_UPDATED}
        )
        base.attach(notifier)
        mine.write_content(b"update")
        assert len(received) == 1
        assert received[0].reason is InvalidationReason.SOURCE_UPDATED_IN_BAND
        assert notifier.notifications_sent == 1

    def test_requires_watch_set(self, world):
        kernel, _, _, _, bus = world
        with pytest.raises(NotifierError):
            NotifierProperty(bus, kernel.ctx.ids.cache("c"), watch=set())

    def test_predicate_filters(self, world):
        kernel, base, mine, theirs, bus = world
        cache_id, received = collect(bus, kernel)
        notifier = NotifierProperty(
            bus,
            cache_id,
            watch={EventType.GET_OUTPUT_STREAM},
            predicate=lambda event: event.user_id != mine.owner,
        )
        base.attach(notifier)
        mine.write_content(b"my own write")    # filtered
        theirs.write_content(b"their write")   # passes
        write_open_invalidations = [
            i for i in received
            if i.reason is InvalidationReason.OPENED_FOR_WRITE
        ]
        assert len(write_open_invalidations) == 1
        assert notifier.events_filtered >= 1

    def test_static_property_changes_ignored(self, world):
        kernel, base, _, _, bus = world
        cache_id, received = collect(bus, kernel)
        base.attach(
            NotifierProperty(bus, cache_id, watch={EventType.SET_PROPERTY})
        )
        base.attach(StaticProperty("just a label"))
        assert received == []

    def test_transforming_property_changes_fire(self, world):
        kernel, base, _, _, bus = world
        cache_id, received = collect(bus, kernel)
        base.attach(
            NotifierProperty(
                bus,
                cache_id,
                watch={EventType.SET_PROPERTY, EventType.REMOVE_PROPERTY},
            )
        )
        translator = TranslationProperty()
        base.attach(translator)
        base.detach(translator)
        assert [i.reason for i in received] == [
            InvalidationReason.PROPERTY_ADDED,
            InvalidationReason.PROPERTY_REMOVED,
        ]

    def test_infrastructure_properties_ignored(self, world):
        kernel, base, _, _, bus = world
        cache_id, received = collect(bus, kernel)
        base.attach(
            NotifierProperty(bus, cache_id, watch={EventType.SET_PROPERTY})
        )
        # Attaching another notifier must not trigger the first.
        base.attach(
            NotifierProperty(
                bus, cache_id, watch={EventType.CONTENT_UPDATED},
                name="second-notifier",
            )
        )
        assert received == []

    def test_scope_user_carried_on_invalidation(self, world):
        kernel, base, mine, theirs, bus = world
        cache_id, received = collect(bus, kernel)
        notifier = NotifierProperty(
            bus,
            cache_id,
            watch={EventType.CONTENT_UPDATED},
            scope_user=mine.owner,
        )
        base.attach(notifier)
        theirs.write_content(b"x")
        assert received[0].user_id == mine.owner


class TestMinimumNotifiers:
    def test_installs_three(self, world):
        kernel, base, mine, _, bus = world
        cache_id, _ = collect(bus, kernel)
        installed = install_minimum_notifiers(mine, bus, cache_id)
        assert len(installed) == 3
        sites = sorted(p.site.value for p in installed)
        assert sites == ["base", "base", "reference"]

    def test_idempotent_per_user(self, world):
        kernel, base, mine, _, bus = world
        cache_id, _ = collect(bus, kernel)
        install_minimum_notifiers(mine, bus, cache_id)
        again = install_minimum_notifiers(mine, bus, cache_id)
        assert again == []

    def test_second_user_adds_only_write_watch(self, world):
        kernel, base, mine, theirs, bus = world
        cache_id, _ = collect(bus, kernel)
        install_minimum_notifiers(mine, bus, cache_id)
        second = install_minimum_notifiers(theirs, bus, cache_id)
        # base property watch is shared; per-user write watch and the
        # reference watch are new.
        assert len(second) == 2

    def test_other_users_write_invalidates_me(self, world):
        kernel, base, mine, theirs, bus = world
        cache_id, received = collect(bus, kernel)
        install_minimum_notifiers(mine, bus, cache_id)
        theirs.write_content(b"their update")
        reasons = {i.reason for i in received}
        assert InvalidationReason.OPENED_FOR_WRITE in reasons

    def test_my_own_write_does_not_notify_me(self, world):
        kernel, base, mine, _, bus = world
        cache_id, received = collect(bus, kernel)
        install_minimum_notifiers(mine, bus, cache_id)
        mine.write_content(b"my update")
        assert all(
            i.reason is not InvalidationReason.OPENED_FOR_WRITE
            for i in received
        )

    def test_personal_property_watch(self, world):
        kernel, base, mine, _, bus = world
        cache_id, received = collect(bus, kernel)
        install_minimum_notifiers(mine, bus, cache_id)
        mine.attach(TranslationProperty())
        assert any(
            i.reason is InvalidationReason.PROPERTY_ADDED
            and i.user_id == mine.owner
            for i in received
        )
