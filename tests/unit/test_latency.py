"""Tests for the latency model and topology paths."""

from __future__ import annotations

import pytest

from repro.errors import RepositoryOfflineError, WorkloadError
from repro.sim.latency import HopCost, LatencyModel, LatencySample, RepositoryCost
from repro.sim.topology import CachePlacement, Topology


class TestHopCost:
    def test_fixed_only(self):
        assert HopCost(fixed_ms=2.0).cost_ms(10_000) == 2.0

    def test_per_kb_scales(self):
        hop = HopCost(fixed_ms=1.0, per_kb_ms=2.0)
        assert hop.cost_ms(2048) == pytest.approx(5.0)


class TestRepositoryCost:
    def test_affine_cost(self):
        repo = RepositoryCost(connect_ms=10.0, per_kb_ms=1.0)
        assert repo.cost_ms(1024) == pytest.approx(11.0)


class TestLatencyModel:
    def test_default_tables_exist(self):
        model = LatencyModel()
        assert model.hop_cost_ms("local") > 0
        assert model.repository_cost_ms("www", 1024) > 0

    def test_unknown_hop_raises(self):
        with pytest.raises(WorkloadError):
            LatencyModel().hop_cost_ms("nonexistent")

    def test_unknown_repository_raises(self):
        with pytest.raises(WorkloadError):
            LatencyModel().repository_cost_ms("nonexistent", 10)

    def test_www_slower_than_parcweb(self):
        model = LatencyModel()
        assert model.repository_cost_ms("www", 1000) > model.repository_cost_ms(
            "parcweb", 1000
        )

    def test_no_jitter_is_deterministic(self):
        model = LatencyModel()
        first = model.repository_cost_ms("www", 5000)
        second = model.repository_cost_ms("www", 5000)
        assert first == second

    def test_jitter_varies_but_reproducibly(self):
        first = LatencyModel(jitter_fraction=0.1, seed=3)
        second = LatencyModel(jitter_fraction=0.1, seed=3)
        samples_a = [first.hop_cost_ms("local") for _ in range(5)]
        samples_b = [second.hop_cost_ms("local") for _ in range(5)]
        assert samples_a == samples_b
        assert len(set(samples_a)) > 1

    def test_jitter_bounds(self):
        model = LatencyModel(jitter_fraction=0.2, seed=1)
        base = HopCost(fixed_ms=10.0).cost_ms(0)
        for _ in range(100):
            cost = model.hop_cost_ms("local", 0)
            nominal = model.hops["local"].cost_ms(0)
            assert 0.8 * nominal <= cost <= 1.2 * nominal
        del base

    def test_invalid_jitter_raises(self):
        with pytest.raises(WorkloadError):
            LatencyModel(jitter_fraction=1.0)

    def test_offline_repository_raises(self):
        model = LatencyModel()
        model.set_repository_offline("www")
        with pytest.raises(RepositoryOfflineError):
            model.repository_cost_ms("www", 10)
        model.set_repository_offline("www", False)
        assert model.repository_cost_ms("www", 10) > 0

    def test_offline_unknown_repository_raises(self):
        with pytest.raises(WorkloadError):
            LatencyModel().set_repository_offline("nope")


class TestLatencySample:
    def test_total_sums_parts(self):
        sample = LatencySample("read")
        sample.add("hop", 1.5)
        sample.add("repo", 2.5)
        assert sample.total_ms == pytest.approx(4.0)

    def test_empty_total_is_zero(self):
        assert LatencySample("x").total_ms == 0.0


class TestTopology:
    def test_application_level_hit_is_local(self):
        topology = Topology(placement=CachePlacement.APPLICATION_LEVEL)
        assert topology.hit_path() == ["local"]

    def test_server_colocated_hit_crosses_network(self):
        topology = Topology(placement=CachePlacement.SERVER_COLOCATED)
        assert topology.hit_path() == ["app-to-reference"]

    def test_fetch_path_has_three_hops(self):
        assert len(Topology().fetch_path()) == 3

    def test_notifier_path_shorter_for_colocated(self):
        app = Topology(placement=CachePlacement.APPLICATION_LEVEL)
        colocated = Topology(placement=CachePlacement.SERVER_COLOCATED)
        assert len(colocated.notifier_path()) < len(app.notifier_path())
