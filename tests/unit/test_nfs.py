"""Tests for the NFS translation layer."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.errors import BadFileHandleError, NFSError
from repro.nfs.server import NFSServer, OpenMode
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.providers.memory import MemoryProvider


@pytest.fixture
def server(kernel):
    return NFSServer(kernel)


@pytest.fixture
def mount(server, kernel, user, memory_reference):
    mount = server.mount(user)
    mount.bind("/docs/memo.txt", memory_reference)
    return mount


class TestNamespace:
    def test_bind_and_listdir(self, mount):
        assert mount.listdir() == ["/docs/memo.txt"]

    def test_bind_foreign_reference_rejected(self, server, kernel, other_user,
                                             memory_reference):
        other_mount = server.mount(other_user)
        with pytest.raises(NFSError):
            other_mount.bind("/stolen", memory_reference)

    def test_unbind(self, mount):
        mount.unbind("/docs/memo.txt")
        assert mount.listdir() == []

    def test_unbind_missing_raises(self, mount):
        with pytest.raises(NFSError):
            mount.unbind("/nope")

    def test_resolve_missing_raises(self, mount):
        with pytest.raises(NFSError):
            mount.resolve("/nope")

    def test_mount_is_cached_per_user(self, server, user):
        assert server.mount(user) is server.mount(user)

    def test_mounts_listing(self, server, user, other_user):
        server.mount(user)
        server.mount(other_user)
        assert len(server.mounts()) == 2


class TestReadWrite:
    def test_read_file(self, mount):
        assert mount.read_file("/docs/memo.txt") == b"the quick brown fox"

    def test_chunked_reads(self, mount):
        fh = mount.open("/docs/memo.txt", "r")
        assert mount.read(fh, 3) == b"the"
        assert mount.read(fh, 6) == b" quick"
        mount.close(fh)

    def test_write_file_reaches_provider(self, mount, memory_reference):
        mount.write_file("/docs/memo.txt", b"rewritten")
        assert memory_reference.base.provider.peek() == b"rewritten"

    def test_write_commits_only_on_close(self, mount, memory_reference):
        fh = mount.open("/docs/memo.txt", "w")
        mount.write(fh, b"partial")
        assert memory_reference.base.provider.peek() == b"the quick brown fox"
        mount.close(fh)
        assert memory_reference.base.provider.peek() == b"partial"

    def test_write_path_properties_apply(self, mount, memory_reference):
        memory_reference.attach(SpellingCorrectorProperty())
        mount.write_file("/docs/memo.txt", b"teh fox")
        assert memory_reference.base.provider.peek() == b"the fox"

    def test_handle_bookkeeping(self, mount):
        fh = mount.open("/docs/memo.txt", "r")
        handle = mount.open_handles()[0]
        assert handle.fh == fh
        assert handle.mode is OpenMode.READ
        mount.read(fh, 5)
        assert handle.bytes_read == 5
        mount.close(fh)
        assert mount.open_handles() == []

    def test_read_on_write_handle_raises(self, mount):
        fh = mount.open("/docs/memo.txt", "w")
        with pytest.raises(NFSError):
            mount.read(fh, 1)
        mount.close(fh)

    def test_write_on_read_handle_raises(self, mount):
        fh = mount.open("/docs/memo.txt", "r")
        with pytest.raises(NFSError):
            mount.write(fh, b"x")
        mount.close(fh)

    def test_bad_handle_raises(self, mount):
        with pytest.raises(BadFileHandleError):
            mount.read(999, 1)

    def test_unsupported_mode_raises(self, mount):
        with pytest.raises(NFSError):
            mount.open("/docs/memo.txt", "a")

    def test_close_bad_handle_raises(self, mount):
        with pytest.raises(BadFileHandleError):
            mount.close(999)


class TestCachedMount:
    def test_reads_hit_cache(self, kernel, user, memory_reference):
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        server = NFSServer(kernel, cache=cache)
        mount = server.mount(user)
        mount.bind("/m", memory_reference)
        mount.read_file("/m")
        mount.read_file("/m")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_write_goes_through_cache(self, kernel, user, memory_reference):
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        server = NFSServer(kernel, cache=cache)
        mount = server.mount(user)
        mount.bind("/m", memory_reference)
        mount.read_file("/m")
        mount.write_file("/m", b"updated")
        # The write invalidated the user's entry and reached the provider.
        assert memory_reference.base.provider.peek() == b"updated"
        assert mount.read_file("/m") == b"updated"


class TestStat:
    def test_stat_reports_source_attributes(self, mount, memory_reference):
        info = mount.stat("/docs/memo.txt")
        assert info["source_size"] == len(b"the quick brown fox")
        assert info["document_id"] == memory_reference.base.document_id
        assert info["reference_id"] == memory_reference.reference_id
        assert info["properties"] == []

    def test_stat_lists_properties(self, mount, memory_reference):
        memory_reference.attach(SpellingCorrectorProperty())
        info = mount.stat("/docs/memo.txt")
        assert "spell-correct" in info["properties"]

    def test_stat_unbound_raises(self, mount):
        with pytest.raises(NFSError):
            mount.stat("/nowhere")
