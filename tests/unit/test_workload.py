"""Tests for the workload generators and the bench harness helpers."""

from __future__ import annotations

import collections

import pytest

from repro.bench.harness import format_table, mean, percentile
from repro.errors import WorkloadError
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import (
    CorpusSpec,
    build_corpus,
    build_table1_documents,
    generate_text,
)
from repro.workload.trace import (
    TraceEventKind,
    TraceSpec,
    generate_trace,
    zipf_indices,
)
from repro.workload.users import build_population


class TestGenerateText:
    def test_exact_size(self):
        for size in (0, 1, 100, 5000):
            assert len(generate_text(size)) == size

    def test_deterministic_per_seed(self):
        assert generate_text(500, seed=1) == generate_text(500, seed=1)
        assert generate_text(500, seed=1) != generate_text(500, seed=2)

    def test_is_ascii_text_with_lines(self):
        text = generate_text(2000)
        decoded = text.decode("ascii")
        assert "\n" in decoded

    def test_negative_size_raises(self):
        with pytest.raises(WorkloadError):
            generate_text(-1)

    def test_contains_transformable_words(self):
        decoded = generate_text(5000, seed=3).decode()
        assert any(word in decoded for word in ("teh", "documnet", "the"))


class TestTable1Documents:
    def test_exact_paper_sizes(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("eyal")
        documents = build_table1_documents(kernel, owner)
        assert [d.size_bytes for d in documents] == [1915, 10_883, 1104]
        assert [d.repository for d in documents] == ["parcweb", "www", "www"]

    def test_documents_are_readable(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("eyal")
        documents = build_table1_documents(kernel, owner)
        for document in documents:
            content = kernel.read(document.reference).content
            assert len(content) == document.size_bytes


class TestCorpus:
    def test_respects_spec_count(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        corpus = build_corpus(kernel, owner, CorpusSpec(n_documents=20))
        assert len(corpus) == 20

    def test_sizes_within_bounds(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        spec = CorpusSpec(n_documents=50, min_size=200, max_size=5000)
        corpus = build_corpus(kernel, owner, spec)
        assert all(200 <= d.size_bytes <= 5000 for d in corpus)

    def test_repository_mix_is_used(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        corpus = build_corpus(kernel, owner, CorpusSpec(n_documents=60))
        repositories = {d.repository for d in corpus}
        assert repositories <= {"nfs", "parcweb", "www"}
        assert len(repositories) >= 2

    def test_bad_mix_raises(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        spec = CorpusSpec(repository_mix=(("nfs", 0.5),))
        with pytest.raises(WorkloadError):
            build_corpus(kernel, owner, spec)

    def test_content_matches_declared_size(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        corpus = build_corpus(kernel, owner, CorpusSpec(n_documents=5))
        for document in corpus:
            assert len(document.provider.peek()) == document.size_bytes


class TestZipf:
    def test_indices_in_range(self):
        indices = zipf_indices(50, 1000, alpha=0.8, seed=1)
        assert all(0 <= i < 50 for i in indices)
        assert len(indices) == 1000

    def test_popularity_is_monotone_ish(self):
        counts = collections.Counter(zipf_indices(20, 50_000, alpha=1.0, seed=2))
        assert counts[0] > counts[10] > counts.get(19, 0)

    def test_alpha_zero_roughly_uniform(self):
        counts = collections.Counter(zipf_indices(10, 50_000, alpha=0.0, seed=3))
        frequencies = [counts[i] / 50_000 for i in range(10)]
        assert max(frequencies) - min(frequencies) < 0.02

    def test_deterministic(self):
        assert zipf_indices(10, 100, seed=4) == zipf_indices(10, 100, seed=4)

    def test_invalid_args_raise(self):
        with pytest.raises(WorkloadError):
            zipf_indices(0, 10)
        with pytest.raises(WorkloadError):
            zipf_indices(10, 10, alpha=-1.0)


class TestTrace:
    def test_event_count(self):
        spec = TraceSpec(n_events=500)
        assert len(list(generate_trace(spec))) == 500

    def test_pure_read_trace(self):
        spec = TraceSpec(n_events=200)
        kinds = {e.kind for e in generate_trace(spec)}
        assert kinds == {TraceEventKind.READ}

    def test_mutation_mix_approximates_probabilities(self):
        spec = TraceSpec(
            n_events=20_000, p_write=0.1, p_out_of_band=0.1, seed=5
        )
        counts = collections.Counter(e.kind for e in generate_trace(spec))
        assert counts[TraceEventKind.WRITE] == pytest.approx(2000, rel=0.15)
        assert counts[TraceEventKind.OUT_OF_BAND_UPDATE] == pytest.approx(
            2000, rel=0.15
        )

    def test_think_time_respects_mean(self):
        spec = TraceSpec(n_events=5000, mean_think_time_ms=100.0, seed=6)
        times = [e.think_time_ms for e in generate_trace(spec)]
        assert mean(times) == pytest.approx(100.0, rel=0.1)

    def test_zero_think_time(self):
        spec = TraceSpec(n_events=10)
        assert all(e.think_time_ms == 0.0 for e in generate_trace(spec))

    def test_users_in_range(self):
        spec = TraceSpec(n_events=100, n_users=3, seed=7)
        assert all(0 <= e.user_index < 3 for e in generate_trace(spec))

    def test_excess_probabilities_raise(self):
        spec = TraceSpec(p_write=0.8, p_out_of_band=0.5)
        with pytest.raises(WorkloadError):
            list(generate_trace(spec))


class TestPopulation:
    def test_everyone_references_everything(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        corpus = build_corpus(kernel, owner, CorpusSpec(n_documents=4))
        population = build_population(kernel, corpus, n_users=3, seed=1)
        assert len(population.users) == 3
        for user_index in range(3):
            for document_index in range(4):
                reference = population.reference(user_index, document_index)
                assert reference.base is corpus[document_index].reference.base

    def test_personalized_fraction_extremes(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        corpus = build_corpus(kernel, owner, CorpusSpec(n_documents=2))
        all_plain = build_population(
            kernel, corpus, n_users=5, personalized_fraction=0.0
        )
        assert set(all_plain.chains) == {"plain"}
        kernel2 = PlacelessKernel()
        owner2 = kernel2.create_user("o")
        corpus2 = build_corpus(kernel2, owner2, CorpusSpec(n_documents=2))
        all_personal = build_population(
            kernel2, corpus2, n_users=5, personalized_fraction=1.0
        )
        assert "plain" not in all_personal.chains

    def test_chains_actually_attached(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("o")
        corpus = build_corpus(kernel, owner, CorpusSpec(n_documents=1))
        population = build_population(
            kernel, corpus, n_users=4, personalized_fraction=1.0, seed=2
        )
        for user_index, chain in enumerate(population.chains):
            reference = population.reference(user_index, 0)
            assert len(reference.active_properties()) >= 1


class TestHarness:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 50) == 50
        assert percentile(values, 100) == 100
        assert percentile([], 50) == 0.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_format_table_aligns(self):
        table = format_table(
            ["name", "value"],
            [("short", 1.5), ("a-longer-name", 22.125)],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert "1.50" in table
        assert "22.12" in table

    def test_format_table_booleans(self):
        table = format_table(["flag"], [(True,), (False,)])
        assert "yes" in table and "no" in table

    def test_format_table_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table
