"""Tests for the read and write paths through base documents and references.

These pin down the §2 semantics: dispatch order (base before reference),
stream execution order (reads: base first; writes: reference first), and
the PathMeta accumulation the cache consumes.
"""

from __future__ import annotations

import pytest

from repro.cache.cacheability import Cacheability
from repro.cache.verifiers import AlwaysValidVerifier
from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty
from repro.providers.memory import MemoryProvider
from repro.streams.transforms import (
    BufferedTransformInputStream,
    BufferedTransformOutputStream,
)


class TaggingProperty(ActiveProperty):
    """Appends its tag on both read and write paths; records dispatches."""

    transforms_reads = True
    execution_cost_ms = 1.0

    def __init__(self, tag: str, log: list | None = None):
        super().__init__(f"tag-{tag}")
        self.tag = tag.encode()
        self.log = log if log is not None else []

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM, EventType.GET_OUTPUT_STREAM}

    def handle(self, event: Event):
        self.log.append((self.name, event.type))

    def wrap_input(self, stream, event):
        return BufferedTransformInputStream(
            stream, lambda data: data + b"<" + self.tag
        )

    def wrap_output(self, stream, event):
        return BufferedTransformOutputStream(
            stream, lambda data: data + b">" + self.tag
        )


class VotingProperty(ActiveProperty):
    """Votes a fixed cacheability level and supplies a verifier."""

    def __init__(self, vote: Cacheability):
        super().__init__(f"vote-{vote.name}")
        self.vote = vote

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def cacheability_vote(self):
        return self.vote

    def make_verifier(self):
        return AlwaysValidVerifier()


@pytest.fixture
def world(kernel, user, other_user):
    provider = MemoryProvider(kernel.ctx, b"SRC")
    base = kernel.create_document(user, provider, "doc")
    reference = kernel.space(user).add_reference(base)
    return kernel, base, reference, provider


class TestReadPath:
    def test_base_transforms_before_reference(self, world):
        kernel, base, reference, _ = world
        base.attach(TaggingProperty("base"))
        reference.attach(TaggingProperty("ref"))
        content = reference.read_content()
        # Base property executes first (closest to the provider).
        assert content == b"SRC<base<ref"

    def test_chain_order_within_one_site(self, world):
        kernel, base, reference, _ = world
        reference.attach(TaggingProperty("one"))
        reference.attach(TaggingProperty("two"))
        assert reference.read_content() == b"SRC<one<two"

    def test_reorder_changes_read_result(self, world):
        kernel, base, reference, _ = world
        one = TaggingProperty("one")
        two = TaggingProperty("two")
        reference.attach(one)
        reference.attach(two)
        reference.reorder([two.property_id, one.property_id])
        assert reference.read_content() == b"SRC<two<one"

    def test_dispatch_order_base_then_reference(self, world):
        kernel, base, reference, _ = world
        log: list = []
        base.attach(TaggingProperty("b", log))
        reference.attach(TaggingProperty("r", log))
        reference.read_content()
        read_events = [
            name for name, kind in log if kind is EventType.GET_INPUT_STREAM
        ]
        assert read_events == ["tag-b", "tag-r"]

    def test_meta_accumulates_costs_and_votes(self, world):
        kernel, base, reference, provider = world
        base.attach(TaggingProperty("b"))
        reference.attach(VotingProperty(Cacheability.CACHEABLE_WITH_EVENTS))
        result = reference.open_input()
        result.read_all()
        meta = result.meta
        # provider cost + 1ms tagging property (voting property costs too)
        assert meta.replacement_cost_ms > 1.0
        assert meta.cacheability is Cacheability.CACHEABLE_WITH_EVENTS
        # provider's verifier + voting property's verifier
        assert len(meta.verifiers) == 2
        assert meta.properties_executed == 2
        assert len(meta.chain_signature) == 1  # only tagging transforms

    def test_meta_source_signature_set(self, world):
        kernel, base, reference, _ = world
        result = reference.open_input()
        result.read_all()
        assert result.meta.source_signature is not None

    def test_source_size_is_raw_size(self, world):
        kernel, base, reference, _ = world
        base.attach(TaggingProperty("grow"))
        result = reference.open_input()
        content = result.read_all()
        assert result.source_size == 3
        assert len(content) > 3

    def test_uncacheable_vote_aggregates(self, world):
        kernel, base, reference, _ = world
        base.attach(VotingProperty(Cacheability.UNCACHEABLE))
        reference.attach(VotingProperty(Cacheability.UNRESTRICTED))
        result = reference.open_input()
        result.read_all()
        assert result.meta.cacheability is Cacheability.UNCACHEABLE


class TestWritePath:
    def test_reference_transforms_before_base(self, world):
        kernel, base, reference, provider = world
        base.attach(TaggingProperty("base"))
        reference.attach(TaggingProperty("ref"))
        reference.write_content(b"NEW")
        # Reference property executes first on the write path.
        assert provider.peek() == b"NEW>ref>base"

    def test_write_chain_order_within_reference(self, world):
        kernel, base, reference, provider = world
        reference.attach(TaggingProperty("one"))
        reference.attach(TaggingProperty("two"))
        reference.write_content(b"W")
        assert provider.peek() == b"W>one>two"

    def test_write_dispatch_order_base_then_reference(self, world):
        kernel, base, reference, _ = world
        log: list = []
        base.attach(TaggingProperty("b", log))
        reference.attach(TaggingProperty("r", log))
        reference.write_content(b"X")
        write_events = [
            name for name, kind in log if kind is EventType.GET_OUTPUT_STREAM
        ]
        assert write_events == ["tag-b", "tag-r"]

    def test_sink_stores_only_on_close(self, world):
        kernel, base, reference, provider = world
        result = reference.open_output()
        result.stream.write(b"partial")
        assert provider.peek() == b"SRC"
        result.stream.close()
        assert provider.peek() == b"partial"
        assert result.sink.stored

    def test_content_updated_dispatched_on_store(self, world):
        kernel, base, reference, _ = world
        seen = []
        base.dispatcher.register(
            kernel.ctx.ids.property("watch"),
            EventType.CONTENT_UPDATED,
            seen.append,
        )
        reference.write_content(b"X")
        assert len(seen) == 1
        assert seen[0].payload["size"] == 1


class TestKernelRouting:
    def test_read_charges_more_than_local(self, world):
        kernel, base, reference, _ = world
        outcome = kernel.read(reference)
        assert outcome.content == b"SRC"
        assert outcome.elapsed_ms > 1.0  # three network hops + repo

    def test_read_stats(self, world):
        kernel, base, reference, _ = world
        kernel.read(reference)
        kernel.read(reference)
        assert kernel.stats.reads == 2
        assert kernel.stats.bytes_read == 6

    def test_write_stats(self, world):
        kernel, base, reference, _ = world
        elapsed = kernel.write(reference, b"hello")
        assert elapsed > 0
        assert kernel.stats.writes == 1
        assert kernel.stats.bytes_written == 5

    def test_import_document_creates_reference(self, kernel, user):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"x"), "imported"
        )
        assert kernel.space(user).has_reference_to(reference.base.document_id)

    def test_document_lookup(self, world):
        kernel, base, _, _ = world
        assert kernel.document(base.document_id) is base

    def test_unknown_document_raises(self, kernel):
        from repro.errors import DocumentNotFoundError
        from repro.ids import DocumentId

        with pytest.raises(DocumentNotFoundError):
            kernel.document(DocumentId("missing"))

    def test_unknown_user_space_raises(self, kernel):
        from repro.errors import SpaceNotFoundError
        from repro.ids import UserId

        with pytest.raises(SpaceNotFoundError):
            kernel.space(UserId("ghost"))

    def test_drop_reference(self, world):
        kernel, base, reference, _ = world
        owner_space = kernel.space(reference.owner)
        owner_space.drop_reference(reference.reference_id)
        assert len(owner_space) == 0
        assert reference not in base.references
