"""Unit tests for the containment layer.

Covers the circuit-breaker state machine and registry, execution
budgets, the guard's per-role fallbacks at the stream-wrapper seam
(skip / force-miss / deny), the notifier firewall, the deprecated
quarantine bridge, and the off-by-default guarantee that
:class:`~repro.cache.stats.CacheStats` gains no fields.
"""

from __future__ import annotations

from dataclasses import fields
from types import SimpleNamespace

import pytest

from repro.cache.containment import (
    BreakerConfig,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
    ExecutionBudget,
)
from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultContainmentPolicy
from repro.cache.stats import CacheStats
from repro.errors import BudgetExceededError, CacheError, CircuitOpenError
from repro.events.types import EventType
from repro.placeless.kernel import PlacelessKernel
from repro.placeless.properties import ActiveProperty
from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext


class RaisingProperty(ActiveProperty):
    """A property whose stream wrapper blows up (until told to behave)."""

    execution_cost_ms = 0.1

    def __init__(self, name="bad-prop", required=False):
        super().__init__(name)
        self.transforms_reads = required
        self.misbehave = True
        self.wrap_calls = 0

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def wrap_input(self, stream, event):
        self.wrap_calls += 1
        if self.misbehave:
            raise RuntimeError("property exploded")
        return stream


class ExpensiveProperty(ActiveProperty):
    """An honestly-declared expensive property (budget fodder)."""

    execution_cost_ms = 50.0

    def __init__(self, name="expensive"):
        super().__init__(name)

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}


def _deployment(policy, prop=None, content=b"hello world"):
    ctx = SimContext()
    kernel = PlacelessKernel(ctx)
    user = kernel.create_user("u")
    provider = MemoryProvider(ctx, content)
    reference = kernel.import_document(user, provider, "doc")
    if prop is not None:
        reference.base.attach(prop, acting_user=user)
    cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, containment_policy=policy
    )
    return kernel, cache, reference


class TestCircuitBreaker:
    def test_initially_closed_and_allowing(self):
        breaker = CircuitBreaker(BreakerConfig())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        assert not breaker.record_failure(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(3.5)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        assert not breaker.record_failure(3.0)
        assert breaker.state is BreakerState.CLOSED

    def test_probation_admits_a_probe(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, probation_delay_ms=100.0)
        )
        breaker.record_failure(0.0)
        assert not breaker.allow(50.0)
        assert breaker.allow(100.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_successes_close_the_circuit(self):
        breaker = CircuitBreaker(
            BreakerConfig(
                failure_threshold=1,
                probation_delay_ms=100.0,
                half_open_successes=2,
            )
        )
        breaker.record_failure(0.0)
        breaker.allow(100.0)
        assert not breaker.record_success(101.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_success(102.0)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens_immediately(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=3, probation_delay_ms=100.0)
        )
        for _ in range(3):
            breaker.record_failure(0.0)
        breaker.allow(100.0)
        assert breaker.record_failure(101.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(150.0)
        assert breaker.allow(201.0)

    def test_none_probation_is_permanently_open(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, probation_delay_ms=None)
        )
        breaker.record_failure(0.0)
        assert not breaker.allow(1e12)

    def test_config_validation(self):
        with pytest.raises(CacheError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(CacheError):
            BreakerConfig(probation_delay_ms=-1.0)
        with pytest.raises(CacheError):
            BreakerConfig(half_open_successes=0)


class TestBreakerRegistry:
    def test_lazily_creates_and_reuses(self):
        registry = BreakerRegistry(BreakerConfig())
        key = ("doc", "stream:x")
        assert registry.peek(key) is None
        breaker = registry.get(key)
        assert registry.get(key) is breaker
        assert len(registry) == 1

    def test_open_keys_and_reset(self):
        registry = BreakerRegistry(BreakerConfig(failure_threshold=1))
        registry.get(("d1", "s")).record_failure()
        registry.get(("d2", "s"))
        assert registry.open_keys() == {("d1", "s")}
        assert registry.reset_all() == 1
        assert len(registry) == 0


class TestExecutionBudget:
    def test_cost_cap(self):
        budget = ExecutionBudget(max_cost_ms=5.0)
        budget.check_cost(5.0, "site")
        with pytest.raises(BudgetExceededError):
            budget.check_cost(5.1, "site")

    def test_uncapped_budget_allows_anything(self):
        ExecutionBudget().check_cost(1e9, "site")

    def test_validation(self):
        with pytest.raises(CacheError):
            ExecutionBudget(max_cost_ms=0.0)
        with pytest.raises(CacheError):
            ExecutionBudget(max_bytes=0)


class TestWrapperSeamFallbacks:
    def test_optional_raise_is_skipped_and_served_degraded(self):
        prop = RaisingProperty(required=False)
        _, cache, reference = _deployment(
            DefaultContainmentPolicy(failure_threshold=1), prop
        )
        outcome = cache.read(reference)
        assert outcome.content == b"hello world"
        assert outcome.degraded
        stats = cache.containment_stats
        assert stats.failures_contained == 1
        assert stats.optional_skips == 1
        assert stats.trips == 1

    def test_required_raise_forces_miss_and_is_never_admitted(self):
        prop = RaisingProperty(required=True)
        _, cache, reference = _deployment(
            DefaultContainmentPolicy(failure_threshold=1), prop
        )
        first = cache.read(reference)
        assert first.degraded and not first.hit
        assert len(cache) == 0  # untransformed result never admitted
        second = cache.read(reference)
        assert not second.hit
        assert cache.containment_stats.forced_misses >= 2

    def test_open_breaker_skips_without_running_the_code(self):
        prop = RaisingProperty(required=False)
        _, cache, reference = _deployment(
            DefaultContainmentPolicy(failure_threshold=1), prop
        )
        cache.read(reference)
        calls_after_trip = prop.wrap_calls
        # The skip fallback keeps the (degraded) result admissible, so
        # force misses by invalidating between reads.
        cache.invalidate_document(reference.document_id)
        cache.read(reference)
        assert prop.wrap_calls == calls_after_trip

    def test_deny_raises_typed_error(self):
        prop = RaisingProperty(required=True)
        _, cache, reference = _deployment(
            DefaultContainmentPolicy(failure_threshold=1, deny_required=True),
            prop,
        )
        with pytest.raises(CircuitOpenError):
            cache.read(reference)

    def test_probation_probe_recovers_a_fixed_property(self):
        prop = RaisingProperty(required=False)
        kernel, cache, reference = _deployment(
            DefaultContainmentPolicy(
                failure_threshold=1,
                probation_delay_ms=500.0,
                half_open_successes=1,
            ),
            prop,
        )
        cache.read(reference)  # trips
        guard = cache.containment
        assert guard.wrappers.open_keys()
        prop.misbehave = False
        kernel.ctx.clock.advance(600.0)
        cache.invalidate_document(reference.document_id)
        outcome = cache.read(reference)  # half-open probe succeeds
        assert not outcome.degraded
        assert not guard.wrappers.open_keys()
        assert cache.containment_stats.probes == 1
        assert cache.containment_stats.closes == 1

    def test_budget_overrun_aborts_and_charges_the_cap(self):
        prop = ExpensiveProperty()
        kernel, cache, reference = _deployment(
            DefaultContainmentPolicy(failure_threshold=3, max_cost_ms=5.0),
            prop,
        )
        before = kernel.ctx.clock.now_ms
        outcome = cache.read(reference)
        assert outcome.degraded
        stats = cache.containment_stats
        assert stats.budget_overruns == 1
        # The access paid the 5 ms cap, not the 50 ms runaway cost.
        assert kernel.ctx.clock.now_ms - before < 50.0


class TestNotifierFirewall:
    def _guard(self):
        _, cache, _ = _deployment(
            DefaultContainmentPolicy(failure_threshold=2)
        )
        return cache.containment

    def test_raising_notifier_is_contained(self):
        guard = self._guard()
        prop = SimpleNamespace(name="n1")
        event = SimpleNamespace(document_id="doc")

        def boom(_event):
            raise RuntimeError("notifier exploded")

        assert guard.run_notifier(prop, event, boom) is None
        assert guard.stats.failures_contained == 1

    def test_open_breaker_suppresses_the_callback(self):
        guard = self._guard()
        prop = SimpleNamespace(name="n1")
        event = SimpleNamespace(document_id="doc")
        calls = []

        def boom(_event):
            raise RuntimeError("notifier exploded")

        guard.run_notifier(prop, event, boom)
        guard.run_notifier(prop, event, boom)  # trips (threshold 2)
        guard.run_notifier(prop, event, lambda e: calls.append(e))
        assert not calls
        assert guard.stats.notifier_suppressed == 1

    def test_successful_notifier_passes_result_through(self):
        guard = self._guard()
        prop = SimpleNamespace(name="n2")
        event = SimpleNamespace(document_id="doc")
        assert guard.run_notifier(prop, event, lambda e: "sent") == "sent"


class TestQuarantineOwnedByBreakers:
    def test_deprecated_bridge_is_gone(self):
        _, cache, _ = _deployment(None)
        assert not hasattr(cache, "quarantined_verifier_keys")
        assert not hasattr(cache, "lift_quarantines")

    def test_breaker_registry_owns_quarantine(self):
        _, cache, _ = _deployment(DefaultContainmentPolicy())
        guard = cache.containment
        key = ("doc", "TTLVerifier")
        breaker = guard.verifiers.get(key)
        for _ in range(guard.verifiers.config.failure_threshold):
            breaker.record_failure()
        assert key in guard.verifiers.open_keys()
        assert guard.verifiers.reset_all() == 1
        assert not guard.verifiers.open_keys()


class TestOffByDefaultGuarantee:
    def test_cache_without_policy_builds_no_guard(self):
        _, cache, reference = _deployment(None)
        assert cache.containment is None
        assert cache.containment_stats is None
        assert cache.read(reference).content == b"hello world"

    def test_cache_stats_gains_no_fields(self):
        # Containment counters live in ContainmentStats only; the shape
        # of CacheStats is pinned so the golden digests stay valid.
        assert {f.name for f in fields(CacheStats)} == {
            "hits", "misses", "uncacheable_reads",
            "verifier_invalidations", "verifier_revalidations",
            "verifier_executions", "verifier_cost_ms",
            "notifier_deliveries", "forwarded_reads", "forwarded_writes",
            "evictions", "writes_through", "writes_backed", "flushes",
            "prefetch_requests", "prefetch_fills", "prefetched_hits",
            "sibling_adoptions", "stale_served_on_error",
            "stale_serve_rejected", "retries", "retry_delay_ms",
            "fetch_failures", "degraded_serves", "backing_bypasses",
            "quarantined_verifiers", "quarantine_forced_misses",
            "dropped_notifier_detected", "flush_failures",
            "bytes_served_from_cache", "bytes_filled", "hit_latency_ms",
            "miss_latency_ms", "stale_hits", "invalidations",
        }
