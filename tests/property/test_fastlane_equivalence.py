"""Fast-lane equivalence: lane on vs. off must be indistinguishable.

The zero-allocation fast lane (:mod:`repro.cache.fastpath`) shortcuts
the staged pipeline for eligible hit reads.  These tests hold it to the
same bar the pipeline refactor was held to: byte-identical golden
digests — same stats, same virtual clock, same recorder cells — with
the lane enabled and disabled, across every golden configuration
(including the chaos one, where the lane must decline eligibility
rather than misbehave).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus

from tests.property.test_pipeline_equivalence import (
    _CONFIGS,
    GOLDEN_DIGESTS,
    digest,
    run_seeded_workload,
)


class TestLaneOffGoldens:
    """With the lane disabled, every golden digest still holds."""

    def test_all_configs_match_goldens_without_lane(self):
        for name, config in _CONFIGS.items():
            snap = run_seeded_workload(fast_lane=False, **config)
            assert digest(snap) == GOLDEN_DIGESTS[name], name


class TestLaneOnOffIdentical:
    """Arbitrary seeds: lane on and lane off → identical snapshots."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_snapshots_identical(self, seed):
        with_lane = run_seeded_workload(seed, fast_lane=True)
        without_lane = run_seeded_workload(seed, fast_lane=False)
        assert with_lane == without_lane

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_chaos_snapshots_identical(self, seed):
        with_lane = run_seeded_workload(seed, chaos=True, fast_lane=True)
        without_lane = run_seeded_workload(seed, chaos=True, fast_lane=False)
        assert with_lane == without_lane


class TestLaneEligibility:
    """The lane engages exactly when the optional seams are off."""

    def test_plain_cache_takes_the_lane(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        corpus = build_corpus(
            kernel, owner, CorpusSpec(n_documents=3, seed=5)
        )
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        lane = cache._fast
        assert lane is not None
        assert lane._eligible(lane.core)
        first = cache.read(corpus[0].reference)
        again = cache.read(corpus[0].reference)
        assert not first.hit and again.hit

    def test_chaos_context_declines_the_lane(self):
        from repro.faults.plan import FaultPlan

        kernel = PlacelessKernel()
        kernel.ctx.faults = FaultPlan(kernel.ctx.clock, seed=3)
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        lane = cache._fast
        assert lane is not None and not lane._eligible(lane.core)

    def test_constructor_flag_disables_the_lane(self):
        kernel = PlacelessKernel()
        cache = DocumentCache(kernel, capacity_bytes=1 << 20, fast_lane=False)
        assert cache._fast is None
