"""Property-based equivalence between the two schedulers.

The contract: for a seed-derived interleaving of read bursts, writes
and out-of-band source mutations, driving every read burst through
``read_many`` under the asyncio scheduler (with single-flight
coalescing on) serves **byte-identical content** to driving the same
burst as sequential ``read`` calls — and both modes conserve the
accounting invariant ``hits + misses == reads served``.  Coalescing may
*reclassify* an access (a follower becomes a hit, a cross-user miss
becomes a memo adoption) but must never change the bytes an
application observes on a healthy deployment.

Under the chaos fault plan the two modes legitimately diverge — a
coalesced batch makes fewer fetches, shifting every subsequent
per-seam RNG draw — so there the properties are per-mode: the async
scheduler is *deterministic* (same seed twice → identical outcome
sequence and stats at the pinned chaos seeds 77/101/202) and conserves
hits + misses.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultConcurrencyPolicy, DefaultMemoPolicy
from repro.faults.plan import FaultPlan
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

_N_DOCUMENTS = 5
_N_USERS = 4
_CHAOS_SEEDS = (77, 101, 202)


def _build(seed: int, chaos: bool = False):
    """One deterministic deployment: kernel, corpus, population, cache."""
    kernel = PlacelessKernel()
    if chaos:
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock,
            seed=seed,
            fetch_failure_probability=0.05,
            notifier_loss_probability=0.10,
            notifier_delay_probability=0.10,
            notifier_delay_ms=150.0,
            verifier_failure_probability=0.02,
        )
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        # Long TTLs: scheduler interleaving shifts virtual timestamps a
        # little, and a read must never flip between fresh and expired
        # because of *when* its verifier ran within a burst.
        CorpusSpec(n_documents=_N_DOCUMENTS, ttl_ms=3_600_000.0, seed=seed),
    )
    population = build_population(
        kernel, corpus, _N_USERS, personalized_fraction=0.5, seed=seed
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 30,
        concurrency_policy=DefaultConcurrencyPolicy(),
        memo_policy=DefaultMemoPolicy(),
        serve_stale_on_error=chaos,
        name=f"sched-prop-{seed}",
    )
    return kernel, corpus, population, cache


def _script(seed: int) -> list[tuple]:
    """A seed-derived interleaving of read bursts, writes and oob edits.

    Read bursts carry duplicates on purpose — that is what makes the
    async mode actually coalesce rather than trivially interleave.
    """
    operations: list[tuple] = []
    state = seed or 1
    for step in range(60):
        state = (state * 1103515245 + 12345) % (1 << 31)
        action = (state >> 16) % 10
        if action < 7:
            burst = []
            width = 2 + (state % 6)  # 2..7 reads per burst
            for position in range(width):
                mixed = (state >> (position + 1)) % (1 << 16)
                burst.append(
                    (mixed % _N_USERS, (mixed >> 4) % _N_DOCUMENTS)
                )
            operations.append(("burst", tuple(burst)))
        elif action < 9:
            operations.append(
                ("write", state % _N_USERS, (state >> 8) % _N_DOCUMENTS, step)
            )
        else:
            operations.append(("oob", (state >> 8) % _N_DOCUMENTS, step))
    return operations


def _run(seed: int, concurrent: bool, chaos: bool = False):
    """Execute the script; returns (per-read results, cache, kernel).

    Each burst contributes one list of results in burst order; a result
    is the served bytes, or the exception type name for chaos-mode
    failures.
    """
    kernel, corpus, population, cache = _build(seed, chaos=chaos)
    results: list[list] = []
    for operation in _script(seed):
        if operation[0] == "burst":
            references = [
                population.reference(user, document)
                for user, document in operation[1]
            ]
            if concurrent:
                outcomes = cache.read_many(
                    references, return_exceptions=True
                )
            else:
                outcomes = []
                for reference in references:
                    try:
                        outcomes.append(cache.read(reference))
                    except Exception as error:
                        outcomes.append(error)
            results.append([
                type(o).__name__ if isinstance(o, BaseException)
                else o.content
                for o in outcomes
            ])
        elif operation[0] == "write":
            _, user, document, step = operation
            cache.write(
                population.reference(user, document),
                f"write {step} by {user}".encode(),
            )
        else:
            _, document, step = operation
            corpus[document].provider.mutate_out_of_band(
                f"out-of-band {step}".encode()
            )
    return results, cache, kernel


def _served(results: list[list]) -> int:
    """Reads that terminated with content (not an exception name)."""
    return sum(
        1
        for burst in results
        for result in burst
        if isinstance(result, bytes)
    )


class TestSequentialAsyncEquivalence:
    """Healthy runs: both schedulers serve byte-identical content."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_byte_identical_content(self, seed):
        sequential, _, _ = _run(seed, concurrent=False)
        concurrent, _, _ = _run(seed, concurrent=True)
        assert sequential == concurrent

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_hits_plus_misses_conserved_in_both_modes(self, seed):
        for concurrent in (False, True):
            results, cache, _ = _run(seed, concurrent=concurrent)
            assert (
                cache.stats.hits + cache.stats.misses == _served(results)
            )

    def test_coalescing_actually_engages(self):
        # Guard against vacuous equivalence: at least one pinned seed
        # must produce real flights and real follows.
        for seed in range(20):
            _, cache, _ = _run(seed, concurrent=True)
            stats = cache.concurrency_stats
            if stats.flights_led > 0 and stats.follows > 0:
                return
        raise AssertionError(
            "no seed in 0..19 exercised single-flight coalescing"
        )


class TestChaosSeeds:
    """Pinned chaos seeds: per-mode determinism + conservation."""

    @pytest.mark.parametrize("seed", _CHAOS_SEEDS)
    def test_async_chaos_is_deterministic(self, seed):
        first, first_cache, _ = _run(seed, concurrent=True, chaos=True)
        second, second_cache, _ = _run(seed, concurrent=True, chaos=True)
        assert first == second
        assert vars(first_cache.stats) == vars(second_cache.stats)

    @pytest.mark.parametrize("seed", _CHAOS_SEEDS)
    def test_conservation_holds_under_chaos_in_both_modes(self, seed):
        for concurrent in (False, True):
            results, cache, _ = _run(seed, concurrent=concurrent, chaos=True)
            assert (
                cache.stats.hits + cache.stats.misses == _served(results)
            )
