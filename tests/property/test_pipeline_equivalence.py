"""Pipeline-equivalence tests: the staged read/write pipeline must be
behaviourally indistinguishable from the pre-refactor monolithic cache.

Two layers of protection:

* **Golden digests** — seeded workloads whose final ``CacheStats``,
  virtual-clock reading and fault-injection traces were captured from the
  pre-refactor ``DocumentCache`` (commit a70192e).  The refactored cache
  must reproduce them byte-for-byte: same counters, same clock, same
  injected faults in the same order.
* **Property-based determinism** — for arbitrary seeds, running the same
  workload twice produces identical snapshots (hypothesis generates the
  seeds; the pipeline must be free of hidden nondeterminism), and the
  instrumentation-bus projection must agree with the stats the run
  reports.
"""

from __future__ import annotations

import hashlib
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.manager import DocumentCache, WriteMode
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.runner import TraceRunner
from repro.workload.trace import TraceSpec, generate_trace
from repro.workload.users import build_population


def run_seeded_workload(
    seed: int,
    *,
    write_mode: WriteMode = WriteMode.WRITE_THROUGH,
    share_across_users: bool = False,
    capacity_factor: float = 2.0,
    chaos: bool = False,
    overload_policy=None,
    fast_lane: bool = True,
) -> dict:
    """One deterministic deployment + trace; returns a comparable snapshot.

    The exact construction order here is load-bearing: it pins down the
    sequence of RNG draws, virtual-clock charges and fault-plan
    consultations that the golden digests were captured against.  Do not
    reorder without recapturing the goldens.
    """
    kernel = PlacelessKernel()
    if chaos:
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock,
            seed=seed,
            fetch_failure_probability=0.05,
            notifier_loss_probability=0.10,
            notifier_delay_probability=0.10,
            notifier_delay_ms=150.0,
            verifier_failure_probability=0.02,
        )
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=10, ttl_ms=4_000.0, seed=seed),
    )
    population = build_population(
        kernel, corpus, n_users=3, personalized_fraction=0.4, seed=seed
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=max(
            1024, int(capacity_factor * sum(d.size_bytes for d in corpus))
        ),
        write_mode=write_mode,
        share_across_users=share_across_users,
        retry_policy=(
            RetryPolicy(
                max_attempts=3, base_delay_ms=50.0, multiplier=2.0,
                max_delay_ms=400.0,
            )
            if chaos
            else None
        ),
        serve_stale_on_error=chaos,
        stale_serve_max_age_ms=30_000.0 if chaos else None,
        verifier_quarantine_threshold=4 if chaos else None,
        overload_policy=overload_policy,
        name=f"equiv-{seed}",
        fast_lane=fast_lane,
    )
    runner = TraceRunner(
        kernel, corpus, population.references, caches=cache,
        writes_via_cache=(write_mode is WriteMode.WRITE_BACK),
    )
    report = runner.execute(
        generate_trace(
            TraceSpec(
                n_events=400, n_documents=10, n_users=3,
                p_write=0.10, p_out_of_band=0.05,
                p_property_change=0.02,
                mean_think_time_ms=20.0,
                seed=seed,
            )
        )
    )
    return snapshot_run(cache, report)


def snapshot_run(cache: DocumentCache, report) -> dict:
    """Everything observable about a finished run, JSON-serialisable."""
    stats = dict(vars(cache.stats))
    stats["invalidations"] = {
        str(reason): count
        for reason, count in sorted(
            stats["invalidations"].items(), key=lambda item: str(item[0])
        )
    }
    plan = cache.ctx.faults
    fault_trace = (
        [
            [record.at_ms, record.site, record.action, record.target]
            for record in plan.injection_trace()
        ]
        if plan is not None
        else []
    )
    return {
        "stats": stats,
        "clock_ms": cache.ctx.clock.now_ms,
        "entries": len(cache),
        "used_bytes": cache.used_bytes,
        "dirty": cache.dirty_count,
        "fault_trace": fault_trace,
        "reads": report.reads,
        "hits": report.hits,
        "read_latency_ms": report.read_latency_ms,
        "availability": report.availability,
    }


def digest(snapshot: dict) -> str:
    """Stable short digest of a snapshot."""
    canonical = json.dumps(snapshot, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


#: Captured from the pre-refactor monolithic DocumentCache.  A digest
#: change here means observable behaviour changed — stats, virtual
#: timing, or the fault-injection trace.
GOLDEN_DIGESTS = {
    "writethrough": "b0ccc5a210bdf103",
    "writethrough-sharing": "f9c3a64ba0de7f0a",
    "writeback": "3202d90c7c33907b",
    "small-cache": "ed2ad506eb07beb3",
    "chaos": "a782be4a83ca7057",
}

_CONFIGS = {
    "writethrough": dict(seed=11),
    "writethrough-sharing": dict(seed=11, share_across_users=True),
    "writeback": dict(seed=23, write_mode=WriteMode.WRITE_BACK),
    "small-cache": dict(seed=37, capacity_factor=0.25),
    "chaos": dict(seed=7, chaos=True),
}


class TestGoldenEquivalence:
    """Same seed → byte-identical stats/clock/fault-trace vs. pre-refactor."""

    def test_writethrough(self):
        snap = run_seeded_workload(**_CONFIGS["writethrough"])
        assert digest(snap) == GOLDEN_DIGESTS["writethrough"]

    def test_writethrough_sharing(self):
        snap = run_seeded_workload(**_CONFIGS["writethrough-sharing"])
        assert digest(snap) == GOLDEN_DIGESTS["writethrough-sharing"]

    def test_writeback(self):
        snap = run_seeded_workload(**_CONFIGS["writeback"])
        assert digest(snap) == GOLDEN_DIGESTS["writeback"]

    def test_small_cache_evictions(self):
        snap = run_seeded_workload(**_CONFIGS["small-cache"])
        assert snap["stats"]["evictions"] > 0  # the config exercises eviction
        assert digest(snap) == GOLDEN_DIGESTS["small-cache"]

    def test_chaos(self):
        snap = run_seeded_workload(**_CONFIGS["chaos"])
        assert snap["fault_trace"]  # faults were actually injected
        assert digest(snap) == GOLDEN_DIGESTS["chaos"]


class TestSeededDeterminism:
    """Arbitrary seeds: two identical runs → identical snapshots."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_healthy_runs_repeat(self, seed):
        first = run_seeded_workload(seed)
        second = run_seeded_workload(seed)
        assert first == second

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_chaos_runs_repeat(self, seed):
        first = run_seeded_workload(seed, chaos=True)
        second = run_seeded_workload(seed, chaos=True)
        assert first == second
        assert first["fault_trace"] == second["fault_trace"]
