"""Property-based tests: query algebra laws and trace serialization."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.placeless.kernel import PlacelessKernel
from repro.placeless.properties import StaticProperty
from repro.placeless.query import HasProperty, IsActive, Predicate, Query
from repro.providers.memory import MemoryProvider
from repro.workload.trace import (
    TraceEvent,
    TraceEventKind,
    TraceSpec,
    generate_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)

LABELS = ["red", "green", "blue", "budget"]


def build_space(assignments: list[list[int]]):
    """A space with one doc per assignment row; labels by index."""
    kernel = PlacelessKernel()
    user = kernel.create_user("u")
    for index, label_indices in enumerate(assignments):
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx, b"x"), f"d{index}"
        )
        for label_index in set(label_indices):
            reference.attach(StaticProperty(LABELS[label_index]))
    return kernel.space(user)


# Random query trees over the label atoms.
def query_trees(max_depth=4):
    atoms = st.sampled_from(LABELS).map(HasProperty)
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] & ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] | ab[1]),
            children.map(lambda q: ~q),
        ),
        max_leaves=8,
    )


assignments_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), max_size=3),
    min_size=1,
    max_size=6,
)


class TestQueryAlgebra:
    @given(assignments_strategy, query_trees())
    @settings(max_examples=40, deadline=None)
    def test_negation_partitions_the_space(self, assignments, query):
        space = build_space(assignments)
        everything = set(space.references())
        matched = set(query.run(space))
        unmatched = set((~query).run(space))
        assert matched | unmatched == everything
        assert matched & unmatched == set()

    @given(assignments_strategy, query_trees(), query_trees())
    @settings(max_examples=40, deadline=None)
    def test_de_morgan_laws(self, assignments, a, b):
        space = build_space(assignments)
        assert set((~(a | b)).run(space)) == set(((~a) & (~b)).run(space))
        assert set((~(a & b)).run(space)) == set(((~a) | (~b)).run(space))

    @given(assignments_strategy, query_trees())
    @settings(max_examples=30, deadline=None)
    def test_idempotence(self, assignments, query):
        space = build_space(assignments)
        assert set((query & query).run(space)) == set(query.run(space))
        assert set((query | query).run(space)) == set(query.run(space))

    @given(assignments_strategy)
    @settings(max_examples=20, deadline=None)
    def test_predicate_true_matches_everything(self, assignments):
        space = build_space(assignments)
        assert set(Predicate(lambda r: True).run(space)) == set(
            space.references()
        )

    @given(assignments_strategy)
    @settings(max_examples=20, deadline=None)
    def test_static_only_space_has_no_active_docs(self, assignments):
        space = build_space(assignments)
        assert IsActive().run(space) == []


trace_specs = st.builds(
    TraceSpec,
    n_events=st.integers(min_value=0, max_value=200),
    n_documents=st.integers(min_value=1, max_value=50),
    n_users=st.integers(min_value=1, max_value=5),
    p_write=st.floats(min_value=0.0, max_value=0.3),
    p_out_of_band=st.floats(min_value=0.0, max_value=0.3),
    mean_think_time_ms=st.sampled_from([0.0, 50.0]),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestTraceSerialization:
    @given(trace_specs)
    @settings(max_examples=40, deadline=None)
    def test_jsonl_roundtrip(self, spec):
        events = list(generate_trace(spec))
        assert trace_from_jsonl(trace_to_jsonl(events)) == events

    def test_empty_trace_roundtrip(self):
        assert trace_to_jsonl([]) == ""
        assert trace_from_jsonl("") == []

    def test_blank_lines_skipped(self):
        event = TraceEvent(TraceEventKind.READ, 1, 0)
        text = "\n" + trace_to_jsonl([event]) + "\n\n"
        assert trace_from_jsonl(text) == [event]

    def test_bad_line_raises_with_line_number(self):
        import pytest

        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError, match="line 1"):
            trace_from_jsonl("{not json")
        with pytest.raises(WorkloadError, match="line 2"):
            trace_from_jsonl('{"kind":"read","doc":1,"user":0}\n{"kind":"??"}')
