"""Property-based tests over the Placeless layer and simulated filer.

Key invariants:

* the NFS layer is a faithful byte transport: whatever an application
  writes through a (transform-free) mount is read back identically,
  regardless of write/read chunking;
* the §3 adoption optimization is *transparent*: an adopted entry serves
  exactly the bytes a full read-path execution would have produced;
* the simulated filer behaves like a dict of paths under random
  operation sequences.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.cache.manager import DocumentCache
from repro.nfs.server import NFSServer
from repro.placeless.kernel import PlacelessKernel
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider
from repro.providers.simfs import SimulatedFileSystem
from repro.sim.clock import VirtualClock

payloads = st.binary(min_size=0, max_size=2048)
chunk_sizes = st.integers(min_value=1, max_value=300)


class TestNFSTransport:
    @given(payloads, chunk_sizes, chunk_sizes)
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip_any_chunking(
        self, data, write_chunk, read_chunk
    ):
        kernel = PlacelessKernel()
        user = kernel.create_user("u")
        reference = kernel.import_document(
            user, MemoryProvider(kernel.ctx), "file"
        )
        mount = NFSServer(kernel).mount(user)
        mount.bind("/f", reference)

        fh = mount.open("/f", "w")
        for start in range(0, len(data), write_chunk):
            mount.write(fh, data[start : start + write_chunk])
        mount.close(fh)

        fh = mount.open("/f", "r")
        pieces = []
        while True:
            piece = mount.read(fh, read_chunk)
            if not piece:
                break
            pieces.append(piece)
        mount.close(fh)
        assert b"".join(pieces) == data


class TestAdoptionTransparency:
    @given(
        st.text(
            alphabet=st.sampled_from("abcdefgh theworldcache "), max_size=200
        ),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_adopted_content_equals_full_read(self, text, with_chain):
        kernel = PlacelessKernel()
        alice = kernel.create_user("alice")
        bob = kernel.create_user("bob")
        base = kernel.create_document(
            alice, MemoryProvider(kernel.ctx, text.encode()), "doc"
        )
        ref_a = kernel.space(alice).add_reference(base)
        ref_b = kernel.space(bob).add_reference(base)
        if with_chain:
            ref_a.attach(TranslationProperty())
            ref_b.attach(TranslationProperty())
            ref_a.attach(SpellingCorrectorProperty())
            ref_b.attach(SpellingCorrectorProperty())
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, share_across_users=True
        )
        cache.read(ref_a)
        adopted = cache.read(ref_b)
        ground_truth = kernel.read(ref_b).content
        assert adopted.content == ground_truth
        if with_chain or True:
            # Identical chains must actually have adopted.
            assert adopted.disposition == "miss-adopted"


class FilerMachine(RuleBasedStateMachine):
    """The simulated filer behaves as a dict of normalized paths."""

    PATHS = ["/a", "/a/b", "/dir/file", "/dir/sub/deep", "/z"]

    def __init__(self):
        super().__init__()
        self.fs = SimulatedFileSystem(VirtualClock())
        self.model: dict[str, bytes] = {}

    @rule(path=st.sampled_from(PATHS), data=payloads)
    def write(self, path, data):
        self.fs.write(path, data)
        self.model[path] = data

    @rule(path=st.sampled_from(PATHS), data=payloads)
    def append(self, path, data):
        self.fs.append(path, data)
        self.model[path] = self.model.get(path, b"") + data

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        path = data.draw(st.sampled_from(sorted(self.model)))
        self.fs.remove(path)
        del self.model[path]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def rename_to_fresh(self, data):
        source = data.draw(st.sampled_from(sorted(self.model)))
        target = "/renamed" + source
        if target in self.model:
            return
        self.fs.rename(source, target)
        self.model[target] = self.model.pop(source)

    @invariant()
    def contents_match_model(self):
        assert set(self.fs.files()) == set(self.model)
        for path, content in self.model.items():
            assert self.fs.read(path) == content
        assert self.fs.total_bytes == sum(
            len(content) for content in self.model.values()
        )


TestFilerMachine = FilerMachine.TestCase


class TestChainSignatureConsistency:
    """Adoption safety hinges on `_expected_chain_signature` predicting
    exactly what a real read path records; they must never drift."""

    @given(
        st.lists(st.sampled_from(["spell", "translate", "none"]), max_size=4),
        st.lists(st.sampled_from(["spell", "translate", "none"]), max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_predicted_signature_matches_recorded(self, base_chain, ref_chain):
        kernel = PlacelessKernel()
        user = kernel.create_user("u")
        base = kernel.create_document(
            user, MemoryProvider(kernel.ctx, b"content"), "doc"
        )
        reference = kernel.space(user).add_reference(base)
        serial = 0
        for site, spec in [(base, name) for name in base_chain] + [
            (reference, name) for name in ref_chain
        ]:
            serial += 1
            if spec == "spell":
                site.attach(SpellingCorrectorProperty(name=f"s{serial}"))
            elif spec == "translate":
                site.attach(TranslationProperty(name=f"t{serial}"))
            else:
                from repro.properties.audit import ReadAuditTrailProperty

                site.attach(ReadAuditTrailProperty(name=f"a{serial}"))
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        predicted = cache._expected_chain_signature(reference)
        result = reference.open_input()
        result.read_all()
        assert result.meta.chain_signature == predicted
