"""Property-based tests for cacheability algebra, the clock and Zipf."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.cache.cacheability import Cacheability
from repro.sim.clock import VirtualClock
from repro.workload.trace import zipf_indices

levels = st.sampled_from(list(Cacheability))


class TestCacheabilityAlgebra:
    @given(st.lists(levels, max_size=10))
    def test_aggregate_is_minimum(self, votes):
        result = Cacheability.aggregate(votes)
        if votes:
            assert result is min(votes)
        else:
            assert result is Cacheability.UNRESTRICTED

    @given(levels, levels)
    def test_combine_commutative(self, a, b):
        assert a.combine(b) is b.combine(a)

    @given(levels, levels, levels)
    def test_combine_associative(self, a, b, c):
        assert a.combine(b).combine(c) is a.combine(b.combine(c))

    @given(st.lists(levels, min_size=1, max_size=10))
    def test_aggregate_order_independent(self, votes):
        assert Cacheability.aggregate(votes) is Cacheability.aggregate(
            list(reversed(votes))
        )


class TestClockProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=30))
    def test_time_is_monotone_under_advances(self, deltas):
        clock = VirtualClock()
        previous = clock.now_ms
        for delta in deltas:
            clock.advance(delta)
            assert clock.now_ms >= previous
            previous = clock.now_ms

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=1,
            max_size=20,
        )
    )
    def test_callbacks_fire_in_due_order(self, delays):
        clock = VirtualClock()
        fired: list[float] = []
        for delay in delays:
            clock.call_after(delay, lambda d=delay: fired.append(d))
        clock.advance(1001.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=20))
    def test_charge_accumulates_exactly(self, costs):
        clock = VirtualClock()
        for cost in costs:
            clock.charge(cost)
        assert clock.total_charged_ms == sum(costs)


class TestZipfProperties:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0.0, max_value=2.5),
        st.integers(min_value=0, max_value=1000),
    )
    def test_indices_always_in_range(self, n_items, n_samples, alpha, seed):
        indices = zipf_indices(n_items, n_samples, alpha, seed)
        assert len(indices) == n_samples
        assert all(0 <= index < n_items for index in indices)

    @given(st.integers(min_value=0, max_value=1000))
    def test_head_at_least_as_popular_as_tail(self, seed):
        indices = zipf_indices(10, 20_000, alpha=1.2, seed=seed)
        head = sum(1 for i in indices if i == 0)
        tail = sum(1 for i in indices if i == 9)
        assert head >= tail
