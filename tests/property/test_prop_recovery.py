"""Property tests for the consistency-recovery layer.

Two invariants the recovery design promises, checked over random
schedules:

* **journal durability** — for any interleaving of acknowledged
  write-backs, partial flushes, crashes and (possibly repeated)
  restarts, every acknowledged write is eventually byte-identical at
  its provider after a final restart + flush, and no write is flushed
  twice (replay is idempotent);
* **resync idempotency** — running anti-entropy resync twice in a row
  repairs everything the first time and nothing the second, for any mix
  of out-of-band source changes and property-chain edits, and leaves
  the cache agreeing with a fresh kernel read.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache.manager import DocumentCache
from repro.cache.pipeline import WriteMode
from repro.cache.policies import DefaultRecoveryPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider

N_DOCS = 4
doc_indices = st.integers(min_value=0, max_value=N_DOCS - 1)
contents = st.binary(min_size=1, max_size=64)


class JournalDurabilityMachine(RuleBasedStateMachine):
    """Random writes/flushes/crashes; acknowledged writes never vanish."""

    @initialize()
    def setup(self):
        self.kernel = PlacelessKernel()
        self.user = self.kernel.create_user("author")
        self.providers = []
        self.refs = []
        for index in range(N_DOCS):
            provider = MemoryProvider(self.kernel.ctx, b"original")
            self.providers.append(provider)
            self.refs.append(
                self.kernel.import_document(
                    self.user, provider, f"d{index}"
                )
            )
        self.cache = DocumentCache(
            self.kernel,
            capacity_bytes=1 << 20,
            write_mode=WriteMode.WRITE_BACK,
            use_verifiers=False,
            recovery_policy=DefaultRecoveryPolicy(lease_term_ms=1_000.0),
        )
        #: What each document's provider must eventually hold.
        self.acknowledged: dict[int, bytes] = {}
        self.flush_count_model = 0

    @rule(doc=doc_indices, content=contents)
    def write(self, doc, content):
        self.cache.write(self.refs[doc], content)
        self.acknowledged[doc] = content

    @rule(doc=doc_indices)
    def flush_one(self, doc):
        self.cache.flush(self.refs[doc])

    @rule()
    def crash_and_restart(self):
        self.cache.crash()
        self.cache.restart()

    @rule()
    def double_restart(self):
        # A second restart (stacked replay) must change nothing.
        self.cache.crash()
        self.cache.restart()
        dirty_after_first = dict(self.cache._core.dirty)
        self.cache.recovery.replay_journal()
        assert dict(self.cache._core.dirty) == dirty_after_first

    @rule()
    def tick(self):
        self.kernel.ctx.clock.advance(137.0)

    @invariant()
    def acknowledged_writes_recoverable(self):
        # Mid-schedule, every acknowledged-but-unflushed write must be
        # either dirty (in the buffer) or recoverable from the journal.
        recoverable = dict(self.cache._core.dirty)
        self.cache.recovery.journal.replay_into(recoverable)
        for doc, content in self.acknowledged.items():
            if self.providers[doc].peek() == content:
                continue
            key = self.cache._key(self.refs[doc])
            assert key in recoverable
            assert recoverable[key][1] == content

    def teardown(self):
        # Final recovery: one more crash/restart cycle, then flush all.
        self.cache.crash()
        self.cache.restart()
        flushes_before = self.cache.stats.flushes
        self.cache.flush_all()
        flushed = self.cache.stats.flushes - flushes_before
        # No duplicate flushes: one per dirty key at most.
        assert flushed <= len(self.acknowledged)
        for doc, content in self.acknowledged.items():
            assert self.providers[doc].peek() == content


JournalDurabilityMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestJournalDurability = JournalDurabilityMachine.TestCase


class TestResyncIdempotent:
    @given(
        st.lists(
            st.tuples(
                doc_indices,
                st.sampled_from(["mutate", "attach"]),
                contents,
            ),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_second_resync_repairs_nothing(self, divergences):
        kernel = PlacelessKernel()
        user = kernel.create_user("reader")
        providers = []
        refs = []
        for index in range(N_DOCS):
            provider = MemoryProvider(kernel.ctx, b"original")
            providers.append(provider)
            refs.append(kernel.import_document(user, provider, f"d{index}"))
        cache = DocumentCache(
            kernel,
            capacity_bytes=1 << 20,
            use_verifiers=False,
            recovery_policy=DefaultRecoveryPolicy(lease_term_ms=1_000.0),
        )
        for reference in refs:
            cache.read(reference)
        # Diverge server state behind the cache's back: notifications
        # suppressed entirely, so only the resync can repair.
        cache.bus.unregister(cache.cache_id)
        for doc, kind, content in divergences:
            if kind == "mutate":
                providers[doc].mutate_out_of_band(content)
            else:
                refs[doc].attach(TranslationProperty())
        first = cache.resync()
        second = cache.resync()
        assert second == 0
        diverged = {doc for doc, _, _ in divergences}
        assert first <= len(diverged)
        # After resync + re-read, the cache agrees with the kernel.
        for reference in refs:
            cached = cache.read(reference).content
            assert cached == kernel.read(reference).content
