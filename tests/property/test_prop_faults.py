"""Property tests: fault injection never corrupts cache bookkeeping.

Whatever interleaving of reads, writes, outage toggles and clock
advances the fault plan throws at the cache, two invariants must hold:
the content store's refcounts exactly mirror the live entries, and the
physically stored bytes never exceed ``capacity_bytes``.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache.manager import DocumentCache
from repro.errors import ProviderError
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider

# The repair rule lifts quarantines through the deprecated manager
# bridge on purpose — it must keep working until the bridge is removed.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

N_DOCS = 4
N_USERS = 2
doc_indices = st.integers(min_value=0, max_value=N_DOCS - 1)
user_indices = st.integers(min_value=0, max_value=N_USERS - 1)
contents = st.binary(min_size=0, max_size=128)


def _build_deployment(capacity_bytes: int):
    kernel = PlacelessKernel()
    users = [kernel.create_user(f"user{i}") for i in range(N_USERS)]
    providers = []
    bases = []
    for index in range(N_DOCS):
        provider = MemoryProvider(
            kernel.ctx, f"doc-{index} initial content".encode()
        )
        providers.append(provider)
        bases.append(kernel.create_document(users[0], provider, f"d{index}"))
    refs = [
        [kernel.space(user).add_reference(base) for base in bases]
        for user in users
    ]
    cache = DocumentCache(
        kernel, capacity_bytes=capacity_bytes,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_ms=5.0),
        serve_stale_on_error=True,
        verifier_quarantine_threshold=3,
    )
    return kernel, users, providers, refs, cache


def _assert_bookkeeping(cache: DocumentCache) -> None:
    """Refcounts mirror live entries; physical bytes fit the capacity."""
    by_signature: dict = {}
    for entry in cache.entries():
        by_signature[entry.signature] = by_signature.get(entry.signature, 0) + 1
    assert len(cache.store) == len(by_signature)
    for signature, count in by_signature.items():
        assert cache.store.refcount(signature) == count
    assert cache.used_bytes <= cache.capacity_bytes
    assert cache.store.physical_bytes == cache.used_bytes


class FaultedCacheMachine(RuleBasedStateMachine):
    """Random ops under a togglable fault plan; bookkeeping must hold."""

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed):
        (
            self.kernel, self.users, self.providers, self.refs, self.cache
        ) = _build_deployment(capacity_bytes=300)
        self._healthy_plan = None
        self._faulty_plan = FaultPlan(
            self.kernel.ctx.clock,
            seed=seed,
            fetch_failure_probability=0.5,
            notifier_loss_probability=0.3,
            verifier_failure_probability=0.2,
        )
        self.serial = 0

    @rule(user=user_indices, doc=doc_indices)
    def read(self, user, doc):
        try:
            self.cache.read(self.refs[user][doc])
        except ProviderError:
            pass  # injected failure past every degradation mode

    @rule(doc=doc_indices, content=contents)
    def write(self, doc, content):
        try:
            self.kernel.write(self.refs[0][doc], content)
        except ProviderError:
            pass

    @rule(doc=doc_indices, content=contents)
    def out_of_band_update(self, doc, content):
        self.providers[doc].mutate_out_of_band(content)

    @rule(ms=st.floats(min_value=1.0, max_value=5_000.0))
    def advance(self, ms):
        self.kernel.ctx.clock.advance(ms)

    @rule()
    def break_the_world(self):
        self.kernel.ctx.faults = self._faulty_plan

    @rule()
    def repair_the_world(self):
        self.kernel.ctx.faults = self._healthy_plan
        self.cache.degradation_policy.breakers.reset_all()

    @invariant()
    def bookkeeping_holds(self):
        _assert_bookkeeping(self.cache)


FaultedCacheMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestFaultedCacheMachine = FaultedCacheMachine.TestCase


class TestFaultedReadSequences:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        operations=st.lists(
            st.tuples(user_indices, doc_indices), min_size=1, max_size=40
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_flaky_fetches_never_corrupt_the_store(self, seed, operations):
        kernel, _, _, refs, cache = _build_deployment(capacity_bytes=250)
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, seed=seed, fetch_failure_probability=0.5
        )
        failures = 0
        for user, doc in operations:
            try:
                cache.read(refs[user][doc])
            except ProviderError:
                failures += 1
            kernel.ctx.clock.advance(10.0)
            _assert_bookkeeping(cache)
        # Bookkeeping survived; and the counters add up.
        assert cache.stats.fetch_failures >= failures

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_recovery_restores_transparency(self, seed):
        kernel, _, _, refs, cache = _build_deployment(capacity_bytes=400)
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, seed=seed,
            fetch_failure_probability=0.6,
            verifier_failure_probability=0.3,
        )
        for user in range(N_USERS):
            for doc in range(N_DOCS):
                try:
                    cache.read(refs[user][doc])
                except ProviderError:
                    pass
        kernel.ctx.faults = None
        cache.degradation_policy.breakers.reset_all()
        for user in range(N_USERS):
            for doc in range(N_DOCS):
                assert (
                    cache.read(refs[user][doc]).content
                    == kernel.read(refs[user][doc]).content
                )
        _assert_bookkeeping(cache)
