"""Property-based equivalence and determinism tests for the memo plane.

Two guarantees:

* **Content equivalence** — on a healthy (fault-free) deployment, a
  memo-enabled cache serves byte-identical content to a memo-disabled
  one for every read of an arbitrary interleaving of reads, writes and
  out-of-band source mutations.  (Fault *traces* cannot be compared
  across the two configurations: a memoized miss skips the fetch seam,
  which shifts every subsequent per-seam RNG draw.)
* **Chaos determinism** — with the memo on under the chaos fault plan,
  the same seed twice produces identical snapshots at the pinned chaos
  seeds 77/101/202 and at hypothesis-chosen seeds, so the memo adds no
  hidden nondeterminism to the recovery/containment machinery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultMemoPolicy
from repro.faults.plan import FaultPlan
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

_N_DOCUMENTS = 6
_N_USERS = 4


def _build(seed: int, memo: bool, chaos: bool = False):
    """One deterministic deployment: kernel, population, cache."""
    kernel = PlacelessKernel()
    if chaos:
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock,
            seed=seed,
            fetch_failure_probability=0.05,
            notifier_loss_probability=0.10,
            notifier_delay_probability=0.10,
            notifier_delay_ms=150.0,
            verifier_failure_probability=0.02,
        )
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=_N_DOCUMENTS, ttl_ms=3_600_000.0, seed=seed),
    )
    population = build_population(
        kernel, corpus, _N_USERS, personalized_fraction=0.5, seed=seed
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 30,
        memo_policy=DefaultMemoPolicy() if memo else None,
        serve_stale_on_error=chaos,
        name=f"memo-prop-{seed}-{memo}",
    )
    return kernel, corpus, population, cache


def _script(seed: int) -> list[tuple]:
    """A seed-derived interleaving of reads, writes and oob mutations.

    Plain Python arithmetic (no RNG object) so both worlds replay the
    identical operation sequence without sharing any mutable state.
    """
    operations = []
    state = seed or 1
    for step in range(120):
        state = (state * 1103515245 + 12345) % (1 << 31)
        user = state % _N_USERS
        document = (state >> 8) % _N_DOCUMENTS
        action = (state >> 16) % 10
        if action < 7:
            operations.append(("read", user, document))
        elif action < 9:
            operations.append(("write", user, document, step))
        else:
            operations.append(("oob", document, step))
    return operations


def _run_script(seed: int, memo: bool) -> list[bytes]:
    """Execute the scripted workload; returns every read's content."""
    kernel, corpus, population, cache = _build(seed, memo)
    contents = []
    for operation in _script(seed):
        if operation[0] == "read":
            _, user, document = operation
            contents.append(
                cache.read(population.reference(user, document)).content
            )
        elif operation[0] == "write":
            _, user, document, step = operation
            cache.write(
                population.reference(user, document),
                f"write {step} by {user}".encode(),
            )
        else:
            _, document, step = operation
            corpus[document].provider.mutate_out_of_band(
                f"out-of-band {step}".encode()
            )
    return contents


def _chaos_snapshot(seed: int) -> str:
    """Digest of everything observable about one memo-on chaos run."""
    kernel, corpus, population, cache = _build(seed, memo=True, chaos=True)
    contents = []
    for operation in _script(seed):
        if operation[0] == "read":
            _, user, document = operation
            try:
                outcome = cache.read(population.reference(user, document))
                contents.append(
                    (outcome.disposition, outcome.content.hex()[:32])
                )
            except Exception as error:
                contents.append(("error", type(error).__name__))
        elif operation[0] == "write":
            _, user, document, step = operation
            try:
                cache.write(
                    population.reference(user, document),
                    f"write {step} by {user}".encode(),
                )
            except Exception as error:
                contents.append(("write-error", type(error).__name__))
        else:
            _, document, step = operation
            corpus[document].provider.mutate_out_of_band(
                f"out-of-band {step}".encode()
            )
    memo_stats = dataclasses.asdict(cache.memo_stats)
    stats = {
        key: value
        for key, value in vars(cache.stats).items()
        if isinstance(value, (int, float, str))
    }
    snapshot = {
        "contents": contents,
        "stats": stats,
        "memo": {key: memo_stats[key] for key in sorted(memo_stats)},
        "clock_ms": cache.ctx.clock.now_ms,
        "entries": len(cache),
        "fault_trace": [
            [record.at_ms, record.site, record.action, record.target]
            for record in kernel.ctx.faults.injection_trace()
        ],
    }
    canonical = json.dumps(snapshot, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class TestMemoContentEquivalence:
    """Memo on vs off: byte-identical content on healthy runs."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_memo_on_off_serve_identical_bytes(self, seed):
        baseline = _run_script(seed, memo=False)
        memoized = _run_script(seed, memo=True)
        assert baseline == memoized

    def test_memo_actually_engages(self):
        # Guard against the equivalence test passing vacuously: on at
        # least one pinned seed the memo must serve real adoptions.
        kernel, corpus, population, cache = _build(5, memo=True)
        for user in range(_N_USERS):
            for document in range(_N_DOCUMENTS):
                cache.read(population.reference(user, document))
        assert cache.memo_stats.adoptions > 0


class TestMemoChaosDeterminism:
    """Same chaos seed twice → identical memo-on snapshots."""

    @pytest.mark.parametrize("seed", [77, 101, 202])
    def test_pinned_chaos_seeds_repeat(self, seed):
        assert _chaos_snapshot(seed) == _chaos_snapshot(seed)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_arbitrary_chaos_seeds_repeat(self, seed):
        assert _chaos_snapshot(seed) == _chaos_snapshot(seed)
