"""Property tests for the containment circuit breaker.

A state-machine check of the three promises the breaker makes for any
interleaving of successes, failures and clock advances:

* an **open** circuit never admits a caller before its probation delay
  has elapsed (and with no probation configured, never admits at all);
* once half-open, the configured number of **consecutive** probe
  successes always closes the circuit — no more, no fewer;
* a probe **failure re-opens** the circuit immediately, and the
  probation clock restarts from that failure.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache.containment import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)

thresholds = st.integers(min_value=1, max_value=4)
probation_delays = st.one_of(
    st.none(),
    st.floats(
        min_value=1.0, max_value=1_000.0,
        allow_nan=False, allow_infinity=False,
    ),
)
probe_quotas = st.integers(min_value=1, max_value=3)
time_deltas = st.floats(
    min_value=0.0, max_value=600.0, allow_nan=False, allow_infinity=False
)


class BreakerMachine(RuleBasedStateMachine):
    """Drives one breaker with random attempts and clock advances."""

    @initialize(
        threshold=thresholds, delay=probation_delays, quota=probe_quotas
    )
    def setup(self, threshold, delay, quota):
        self.config = BreakerConfig(
            failure_threshold=threshold,
            probation_delay_ms=delay,
            half_open_successes=quota,
        )
        self.breaker = CircuitBreaker(self.config)
        self.now = 0.0
        #: When we last observed the circuit (re)open.
        self.opened_at = None
        #: Consecutive probe successes since entering half-open.
        self.probe_streak = 0

    @rule(delta=time_deltas)
    def advance(self, delta):
        self.now += delta

    @rule(succeed=st.booleans())
    def attempt(self, succeed):
        was_open = self.breaker.state is BreakerState.OPEN
        allowed = self.breaker.allow(self.now)
        delay = self.config.probation_delay_ms
        if was_open:
            if allowed:
                # Invariant 1: never served through an open circuit
                # before the probation delay elapsed.
                assert delay is not None
                assert self.now - self.opened_at >= delay
                assert self.breaker.state is BreakerState.HALF_OPEN
                self.probe_streak = 0
            else:
                assert delay is None or self.now - self.opened_at < delay
        if not allowed:
            assert self.breaker.state is BreakerState.OPEN
            return
        half_open = self.breaker.state is BreakerState.HALF_OPEN
        if succeed:
            closed = self.breaker.record_success(self.now)
            if half_open:
                self.probe_streak += 1
                # Invariant 2: exactly the configured number of
                # consecutive probe successes closes the circuit.
                assert closed == (
                    self.probe_streak >= self.config.half_open_successes
                )
                if closed:
                    assert self.breaker.state is BreakerState.CLOSED
            else:
                assert not closed
        else:
            reopened = self.breaker.record_failure(self.now)
            if half_open:
                # Invariant 3: a probe failure re-opens immediately.
                assert reopened
                assert self.breaker.state is BreakerState.OPEN
            if self.breaker.state is BreakerState.OPEN:
                self.opened_at = self.now
                self.probe_streak = 0

    @invariant()
    def open_circuit_has_a_known_opening(self):
        if self.breaker.state is BreakerState.OPEN:
            assert self.opened_at is not None


TestBreakerMachine = BreakerMachine.TestCase
TestBreakerMachine.settings = settings(
    max_examples=50, stateful_step_count=40, deadline=None
)


@given(threshold=thresholds, failures=st.integers(min_value=0, max_value=8))
@settings(max_examples=50, deadline=None)
def test_trips_after_exactly_threshold_consecutive_failures(
    threshold, failures
):
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=threshold, probation_delay_ms=100.0)
    )
    for i in range(failures):
        breaker.record_failure(float(i))
    expected_open = failures >= threshold
    assert (breaker.state is BreakerState.OPEN) == expected_open


@given(threshold=thresholds)
@settings(max_examples=25, deadline=None)
def test_a_success_anywhere_resets_the_failure_streak(threshold):
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=threshold + 1, probation_delay_ms=None)
    )
    for i in range(threshold):
        breaker.record_failure(float(i))
    breaker.record_success(float(threshold))
    for i in range(threshold):
        breaker.record_failure(float(threshold + 1 + i))
    assert breaker.state is BreakerState.CLOSED
