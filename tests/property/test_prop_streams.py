"""Property-based tests for the stream machinery.

Invariants: chunking must never change what a reader observes; paired
transforms must round-trip arbitrary bytes under arbitrary chunkings.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.properties.compression import CompressionProperty
from repro.properties.encryption import EncryptionProperty
from repro.events.types import Event, EventType
from repro.ids import DocumentId
from repro.streams.base import BytesInputStream, BytesOutputStream
from repro.streams.transforms import (
    BufferedTransformInputStream,
    ChunkTransformInputStream,
    LineTransformInputStream,
)

payloads = st.binary(min_size=0, max_size=4096)
chunk_sizes = st.integers(min_value=1, max_value=257)


def read_chunked(stream, chunk_size: int) -> bytes:
    return b"".join(iter(lambda: stream.read(chunk_size), b""))


def dummy_event() -> Event:
    return Event(type=EventType.GET_INPUT_STREAM, document_id=DocumentId("d"))


class TestChunkingInvariance:
    @given(payloads, chunk_sizes)
    def test_bytes_input_chunking_is_lossless(self, data, chunk_size):
        assert read_chunked(BytesInputStream(data), chunk_size) == data

    @given(payloads, chunk_sizes)
    def test_buffered_transform_equals_whole_transform(self, data, chunk_size):
        stream = BufferedTransformInputStream(
            BytesInputStream(data), lambda d: d[::-1]
        )
        assert read_chunked(stream, chunk_size) == data[::-1]

    @given(payloads, chunk_sizes)
    def test_chunk_transform_of_bytewise_map_is_chunking_invariant(
        self, data, chunk_size
    ):
        def flip(d: bytes) -> bytes:
            return bytes(b ^ 0xFF for b in d)

        stream = ChunkTransformInputStream(BytesInputStream(data), flip)
        assert read_chunked(stream, chunk_size) == flip(data)

    @given(
        st.lists(st.binary(min_size=0, max_size=50), max_size=20),
        chunk_sizes,
    )
    def test_line_transform_sees_whole_lines(self, lines, chunk_size):
        # Filter out embedded newlines so "lines" are genuine.
        lines = [line.replace(b"\n", b"x") for line in lines]
        data = b"\n".join(lines)
        seen: list[bytes] = []

        def record(line: bytes) -> bytes:
            seen.append(line)
            return line

        stream = LineTransformInputStream(BytesInputStream(data), record)
        assert read_chunked(stream, chunk_size) == data
        # Every observed "line" is one of the original lines.
        for line in seen:
            assert line in lines


class TestPairedTransformRoundtrips:
    @given(payloads, chunk_sizes, chunk_sizes, st.binary(min_size=1, max_size=32))
    @settings(max_examples=50)
    def test_encryption_roundtrip_any_chunking(
        self, data, write_chunk, read_chunk, key
    ):
        prop = EncryptionProperty(key)
        sink = BytesOutputStream()
        out = prop.wrap_output(sink, dummy_event())
        for start in range(0, len(data), write_chunk):
            out.write(data[start : start + write_chunk])
        out.close()
        ciphertext = sink.getvalue()
        # (No ciphertext != plaintext assertion: for short inputs the XOR
        # keystream can legitimately coincide with the plaintext.)
        stream = prop.wrap_input(BytesInputStream(ciphertext), dummy_event())
        assert read_chunked(stream, read_chunk) == data

    @given(payloads, chunk_sizes)
    @settings(max_examples=50)
    def test_compression_roundtrip(self, data, read_chunk):
        prop = CompressionProperty()
        sink = BytesOutputStream()
        out = prop.wrap_output(sink, dummy_event())
        out.write(data)
        out.close()
        stream = prop.wrap_input(
            BytesInputStream(sink.getvalue()), dummy_event()
        )
        assert read_chunked(stream, read_chunk) == data

    @given(payloads, st.binary(min_size=1, max_size=16))
    @settings(max_examples=50)
    def test_encryption_is_length_preserving(self, data, key):
        prop = EncryptionProperty(key)
        sink = BytesOutputStream()
        out = prop.wrap_output(sink, dummy_event())
        out.write(data)
        out.close()
        assert len(sink.getvalue()) == len(data)
