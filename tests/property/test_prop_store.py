"""Property-based tests for the content store's refcount invariants."""

from __future__ import annotations

from hypothesis import given, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.content.signature import sign
from repro.content.store import ContentStore

contents = st.binary(min_size=0, max_size=64)


class TestStoreAlgebra:
    @given(st.lists(contents, max_size=50))
    def test_physical_counts_distinct_logical_counts_all(self, items):
        store = ContentStore()
        for item in items:
            store.put(item)
        distinct = {bytes(i) for i in items}
        assert store.physical_bytes == sum(len(d) for d in distinct)
        assert store.logical_bytes == sum(len(i) for i in items)

    @given(st.lists(contents, min_size=1, max_size=30))
    def test_put_then_release_all_empties_store(self, items):
        store = ContentStore()
        signatures = [store.put(item) for item in items]
        for signature in signatures:
            store.release(signature)
        assert len(store) == 0
        assert store.physical_bytes == 0

    @given(contents)
    def test_get_returns_exactly_what_was_put(self, data):
        store = ContentStore()
        assert store.get(store.put(data)) == data

    @given(st.lists(contents, max_size=30))
    def test_refcount_equals_put_count(self, items):
        store = ContentStore()
        for item in items:
            store.put(item)
        for item in set(items):
            assert store.refcount(sign(item)) == items.count(item)


class StoreMachine(RuleBasedStateMachine):
    """Model-based check: the store tracks a multiset of byte strings."""

    def __init__(self):
        super().__init__()
        self.store = ContentStore()
        self.model: dict[bytes, int] = {}

    @rule(data=contents)
    def put(self, data):
        self.store.put(data)
        self.model[data] = self.model.get(data, 0) + 1

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def release(self, data):
        choice = data.draw(st.sampled_from(sorted(self.model)))
        self.store.release(sign(choice))
        self.model[choice] -= 1
        if self.model[choice] == 0:
            del self.model[choice]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def adopt(self, data):
        choice = data.draw(st.sampled_from(sorted(self.model)))
        self.store.adopt(sign(choice))
        self.model[choice] += 1

    @invariant()
    def counts_match_model(self):
        assert len(self.store) == len(self.model)
        assert self.store.physical_bytes == sum(len(k) for k in self.model)
        assert self.store.logical_bytes == sum(
            len(k) * count for k, count in self.model.items()
        )
        for key, count in self.model.items():
            assert self.store.refcount(sign(key)) == count


TestStoreMachine = StoreMachine.TestCase
