"""Model-based property tests for the cache manager.

The model is simple: after any sequence of reads, writes, out-of-band
updates and property attachments, a read through the cache must return
exactly what a fresh read through the kernel would return (the cache is
*transparent*), and the store's physical bytes must never exceed
capacity.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider

N_DOCS = 4
N_USERS = 3
doc_indices = st.integers(min_value=0, max_value=N_DOCS - 1)
user_indices = st.integers(min_value=0, max_value=N_USERS - 1)
contents = st.binary(min_size=0, max_size=128)


class CacheTransparencyMachine(RuleBasedStateMachine):
    """Random ops; invariant: cache reads equal uncached kernel reads."""

    @initialize()
    def setup(self):
        self.kernel = PlacelessKernel()
        self.users = [
            self.kernel.create_user(f"user{i}") for i in range(N_USERS)
        ]
        self.providers = []
        bases = []
        for index in range(N_DOCS):
            provider = MemoryProvider(
                self.kernel.ctx, f"doc-{index} initial".encode()
            )
            self.providers.append(provider)
            bases.append(
                self.kernel.create_document(
                    self.users[0], provider, f"d{index}"
                )
            )
        self.refs = [
            [self.kernel.space(user).add_reference(base) for base in bases]
            for user in self.users
        ]
        self.cache = DocumentCache(self.kernel, capacity_bytes=300)
        self.translator_serial = 0

    @rule(user=user_indices, doc=doc_indices)
    def read(self, user, doc):
        outcome = self.cache.read(self.refs[user][doc])
        fresh = self.kernel.read(self.refs[user][doc]).content
        assert outcome.content == fresh

    @rule(user=user_indices, doc=doc_indices, data=contents)
    def write_through_cache(self, user, doc, data):
        self.cache.write(self.refs[user][doc], data)

    @rule(doc=doc_indices, data=contents)
    def out_of_band_update(self, doc, data):
        self.providers[doc].mutate_out_of_band(data)

    @rule(user=user_indices, doc=doc_indices)
    def attach_translator(self, user, doc):
        reference = self.refs[user][doc]
        self.translator_serial += 1
        reference.attach(
            TranslationProperty(name=f"tr-{self.translator_serial}")
        )

    @rule(user=user_indices, doc=doc_indices)
    def detach_translator_if_any(self, user, doc):
        reference = self.refs[user][doc]
        translators = [
            p for p in reference.active_properties()
            if p.name.startswith("tr-")
        ]
        if translators:
            reference.detach(translators[0])

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_bytes <= self.cache.capacity_bytes

    @invariant()
    def store_refcounts_match_entries(self):
        by_signature: dict = {}
        for entry in self.cache.entries():
            by_signature[entry.signature] = (
                by_signature.get(entry.signature, 0) + 1
            )
        for signature, count in by_signature.items():
            assert self.cache.store.refcount(signature) == count
        assert len(self.cache.store) == len(by_signature)


CacheTransparencyMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestCacheTransparency = CacheTransparencyMachine.TestCase


class TestCacheProperties:
    @given(st.lists(st.tuples(user_indices, doc_indices), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_read_only_workload_is_always_consistent(self, accesses):
        kernel = PlacelessKernel()
        users = [kernel.create_user(f"u{i}") for i in range(N_USERS)]
        bases = [
            kernel.create_document(
                users[0], MemoryProvider(kernel.ctx, f"content {i}".encode()),
                f"d{i}",
            )
            for i in range(N_DOCS)
        ]
        refs = [
            [kernel.space(u).add_reference(b) for b in bases] for u in users
        ]
        cache = DocumentCache(kernel, capacity_bytes=1 << 20)
        for user, doc in accesses:
            outcome = cache.read(refs[user][doc])
            assert outcome.content == f"content {doc}".encode()
        # With no mutations, misses are bounded by (user, doc) pairs.
        assert cache.stats.misses <= N_DOCS * N_USERS
