"""Churn-workload properties: determinism, popularity, lifecycle.

The churn generator feeds the A20 scale bench, so its guarantees are
load-bearing for reproducibility claims:

* same :class:`ChurnSpec` → the identical event stream, twice;
* Zipf popularity is monotone in rank — low ranks of the live set are
  read more often than high ranks;
* no document is read or written before its PUBLISH or after its
  PERISH — the trace only touches live documents;
* publishes mint each catalog index at most once, in index order.

The seed strategy honours ``REPRO_CHAOS_SEED`` (77/101/202 in CI) the
same way the chaos tiers do, so each matrix leg explores a different
corner of spec space.
"""

from __future__ import annotations

import os
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.churn import (
    ChurnCatalog,
    ChurnEventKind,
    ChurnSpec,
    ZipfSampler,
    generate_churn,
    universal_documents,
)
from repro.workload.documents import CorpusSpec
from repro.placeless.kernel import PlacelessKernel

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "77"))


def spec_from(seed: int, **overrides) -> ChurnSpec:
    base = dict(
        n_events=1500,
        n_documents=300,
        n_live_start=120,
        n_users=3,
        zipf_alpha=0.9,
        p_write=0.05,
        p_publish=0.02,
        p_perish=0.01,
        p_flash=0.002,
        flash_duration=50,
        cycle_period=200,
        mean_think_time_ms=1.0,
        seed=seed,
    )
    base.update(overrides)
    return ChurnSpec(**base)


seeds = st.integers(min_value=0, max_value=2**16).map(
    lambda s: s ^ CHAOS_SEED
)


class TestChurnDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_same_spec_same_stream(self, seed):
        spec = spec_from(seed)
        first = list(generate_churn(spec))
        second = list(generate_churn(spec))
        assert first == second
        assert len(first) >= spec.n_events  # publishes/perishes ride along

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_universal_set_deterministic(self, seed):
        spec = spec_from(seed)
        assert universal_documents(spec) == universal_documents(spec)


class TestChurnLifecycle:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_no_touch_outside_lifetime(self, seed):
        spec = spec_from(seed)
        live = set(range(spec.n_live_start))
        for event in generate_churn(spec):
            if event.kind is ChurnEventKind.PUBLISH:
                assert event.document_index not in live
                live.add(event.document_index)
            elif event.kind is ChurnEventKind.PERISH:
                assert event.document_index in live
                live.remove(event.document_index)
            else:
                assert event.document_index in live
            assert 0 <= event.user_index < spec.n_users
            assert event.think_time_ms >= 0.0

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_publishes_unique_and_in_order(self, seed):
        spec = spec_from(seed, p_publish=0.05)
        published = [
            event.document_index
            for event in generate_churn(spec)
            if event.kind is ChurnEventKind.PUBLISH
        ]
        assert len(published) == len(set(published))
        assert published == sorted(published)
        assert all(index >= spec.n_live_start for index in published)


class TestChurnPopularity:
    def test_low_ranks_dominate(self):
        spec = spec_from(CHAOS_SEED, n_events=12_000, p_publish=0.0,
                         p_perish=0.0, p_flash=0.0)
        counts = [0] * spec.n_documents
        for event in generate_churn(spec):
            if event.kind is ChurnEventKind.READ:
                counts[event.document_index] += 1
        # With no churn, rank order is stable: index == live rank.
        head = sum(counts[: spec.n_live_start // 10])
        tail = sum(counts[spec.n_live_start // 2:])
        assert head > tail
        assert counts[0] > counts[spec.n_live_start - 1]

    def test_zipf_sampler_respects_live_prefix(self):
        sampler = ZipfSampler(100, alpha=0.9)
        rng = random.Random(CHAOS_SEED)
        draws = [sampler.sample(rng, n_live=10) for _ in range(500)]
        assert all(0 <= draw < 10 for draw in draws)
        assert min(draws) == 0  # rank 0 is by far the likeliest


class TestLazyCatalog:
    def test_materializes_only_touched_documents(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        catalog = ChurnCatalog(
            kernel, owner, CorpusSpec(n_documents=500, seed=CHAOS_SEED)
        )
        assert catalog.materialized_count == 0
        assert catalog.peek(123) is None
        document = catalog.document(123)
        assert catalog.materialized_count == 1
        assert catalog.peek(123) is document
        assert catalog.document(123) is document  # idempotent
        assert document.size_bytes == catalog.size_of(123)
        assert document.repository == catalog.repository_of(123)

    def test_sizes_known_without_materializing(self):
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        spec = CorpusSpec(n_documents=200, seed=CHAOS_SEED)
        catalog = ChurnCatalog(kernel, owner, spec)
        sizes = [catalog.size_of(index) for index in range(len(catalog))]
        assert catalog.materialized_count == 0
        assert all(
            spec.min_size <= size <= spec.max_size for size in sizes
        )
