"""Property-based tests for replacement policies.

Invariants that must hold for *any* policy under *any* workload: victims
come from the live table, the GDS inflation value never decreases, and a
cache driven by any policy never exceeds capacity.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cache.entry import CacheEntry, EntryKey
from repro.cache.cacheability import Cacheability
from repro.cache.manager import DocumentCache
from repro.cache.replacement import GreedyDualSizePolicy, make_policy
from repro.content.signature import sign
from repro.ids import DocumentId, UserId
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider

policy_names = st.sampled_from(
    ["gds", "gdsf", "gds-costblind", "gd", "lru", "lfu", "fifo", "size",
     "random", "rc"]
)


def make_entry(name: str, size: int, cost: float) -> CacheEntry:
    return CacheEntry(
        key=EntryKey(DocumentId(name), UserId("u")),
        signature=sign(name.encode()),
        size=size,
        cacheability=Cacheability.UNRESTRICTED,
        verifiers=[],
        replacement_cost_ms=cost,
        chain_signature=(),
        reference_id=None,
        created_at_ms=0.0,
        last_access_ms=0.0,
    )


entry_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10_000),   # size
        st.floats(min_value=0.001, max_value=1000.0),  # cost
    ),
    min_size=1,
    max_size=25,
)


class TestPolicyInvariants:
    @given(policy_names, entry_specs, st.data())
    @settings(max_examples=60, deadline=None)
    def test_victims_always_live_until_exhausted(self, name, specs, data):
        policy = make_policy(name)
        table = {}
        for index, (size, cost) in enumerate(specs):
            entry = make_entry(f"e{index}", size, cost)
            table[entry.key] = entry
            policy.on_insert(entry)
        # Random interleaved accesses.
        for _ in range(data.draw(st.integers(min_value=0, max_value=10))):
            key = data.draw(st.sampled_from(sorted(table, key=str)))
            table[key].access_count += 1
            policy.on_access(table[key])
        evicted = set()
        while table:
            victim = policy.select_victim(table)
            assert victim in table
            assert victim not in evicted
            evicted.add(victim)
            policy.on_remove(table.pop(victim))

    @given(entry_specs)
    @settings(max_examples=60, deadline=None)
    def test_gds_inflation_never_decreases(self, specs):
        policy = GreedyDualSizePolicy()
        table = {}
        for index, (size, cost) in enumerate(specs):
            entry = make_entry(f"e{index}", size, cost)
            table[entry.key] = entry
            policy.on_insert(entry)
        previous = policy.inflation
        while table:
            victim = policy.select_victim(table)
            del table[victim]
            assert policy.inflation >= previous
            previous = policy.inflation


class TestCacheCapacityUnderAnyPolicy:
    @given(
        policy_names,
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_capacity_never_exceeded(self, name, accesses):
        kernel = PlacelessKernel()
        user = kernel.create_user("u")
        refs = [
            kernel.import_document(
                user,
                MemoryProvider(kernel.ctx, bytes([65 + i]) * (40 + i * 17)),
                f"d{i}",
            )
            for i in range(8)
        ]
        cache = DocumentCache(
            kernel, capacity_bytes=150, policy=make_policy(name)
        )
        for index in accesses:
            outcome = cache.read(refs[index])
            assert cache.used_bytes <= 150
            expected = bytes([65 + index]) * (40 + index * 17)
            assert outcome.content == expected
