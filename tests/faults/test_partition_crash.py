"""Tests for the partition / cache-crash fault plumbing and its CLI.

The bus-partition windows and scheduled cache-crash instants ride the
existing :class:`~repro.faults.plan.FaultPlan`; the named scenarios ride
the existing ``--faults`` CLI flag.  These tests pin the seam contracts:
window checks draw no RNG (so golden fault traces stay byte-identical),
drops are counted separately from probabilistic losses, and the CLI
accepts exactly the documented scenario names.
"""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser
from repro.errors import WorkloadError
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.scenarios import (
    NAMED_CHAOS_SCENARIOS,
    cache_crash_scenario,
    crash_chaos_scenario,
    diskchaos_chaos_scenario,
    grayshard_chaos_scenario,
    misbehave_chaos_scenario,
    partition_chaos_scenario,
    partition_scenario,
    standard_chaos_scenario,
)
from repro.sim.clock import VirtualClock


class TestPartitionWindows:
    def test_bus_partitioned_is_a_pure_window_check(self):
        clock = VirtualClock()
        plan = FaultPlan(
            clock, bus_outages=(OutageWindow(100.0, 200.0),)
        )
        assert not plan.bus_partitioned("cache-1")
        clock.advance(150.0)
        assert plan.bus_partitioned("cache-1")
        # No RNG draw, no trace record, no stats movement.
        assert plan.injection_trace() == ()
        assert plan.stats.total == 0
        clock.advance(100.0)
        assert not plan.bus_partitioned("cache-1")

    def test_targeted_window_only_covers_its_cache(self):
        clock = VirtualClock()
        plan = FaultPlan(
            clock,
            bus_outages=(OutageWindow(0.0, 100.0, "cache-a"),),
        )
        assert plan.bus_partitioned("cache-a")
        assert not plan.bus_partitioned("cache-b")

    def test_check_bus_delivery_counts_and_records_drops(self):
        clock = VirtualClock()
        plan = FaultPlan(clock, bus_outages=(OutageWindow(0.0, 100.0),))
        assert plan.check_bus_delivery("cache-1")
        assert plan.stats.notifications_partition_dropped == 1
        assert plan.stats.notifications_lost == 0
        record = plan.injection_trace()[-1]
        assert (record.site, record.action) == ("bus", "partition-drop")
        clock.advance(200.0)
        assert not plan.check_bus_delivery("cache-1")
        assert plan.stats.notifications_partition_dropped == 1

    def test_partition_drops_count_in_total(self):
        clock = VirtualClock()
        plan = FaultPlan(clock, bus_outages=(OutageWindow(0.0, 1.0),))
        plan.check_bus_delivery("x")
        assert plan.stats.total == 1


class TestCrashSchedule:
    def test_crash_instants_are_sorted_and_validated(self):
        clock = VirtualClock()
        plan = FaultPlan(clock, cache_crashes=(500.0, 100.0))
        assert plan.cache_crashes == (100.0, 500.0)
        with pytest.raises(WorkloadError):
            FaultPlan(clock, cache_crashes=(-1.0,))


class TestScenarioFactories:
    def test_partition_scenario_builds_one_window(self):
        clock = VirtualClock()
        plan = partition_scenario(clock, start_ms=10.0, duration_ms=5.0)
        assert plan.bus_outages == (OutageWindow(10.0, 15.0),)
        assert plan.cache_crashes == ()

    def test_cache_crash_scenario_builds_one_instant(self):
        clock = VirtualClock()
        plan = cache_crash_scenario(clock, at_ms=42.0)
        assert plan.cache_crashes == (42.0,)
        assert plan.bus_outages == ()

    def test_named_scenarios_cover_the_cli_choices(self):
        assert set(NAMED_CHAOS_SCENARIOS) == {
            "standard", "partition", "crash", "misbehave", "diskchaos",
            "grayshard",
        }
        assert NAMED_CHAOS_SCENARIOS["standard"] is standard_chaos_scenario
        assert NAMED_CHAOS_SCENARIOS["partition"] is partition_chaos_scenario
        assert NAMED_CHAOS_SCENARIOS["crash"] is crash_chaos_scenario
        assert NAMED_CHAOS_SCENARIOS["misbehave"] is misbehave_chaos_scenario
        assert NAMED_CHAOS_SCENARIOS["diskchaos"] is diskchaos_chaos_scenario
        assert NAMED_CHAOS_SCENARIOS["grayshard"] is grayshard_chaos_scenario

    def test_chaos_variants_keep_the_standard_probabilities(self):
        clock = VirtualClock()
        standard = standard_chaos_scenario(clock)
        for factory in (
            partition_chaos_scenario,
            crash_chaos_scenario,
            misbehave_chaos_scenario,
            diskchaos_chaos_scenario,
            grayshard_chaos_scenario,
        ):
            variant = factory(VirtualClock())
            assert (
                variant.notifier_loss_probability
                == standard.notifier_loss_probability
            )
            assert (
                variant.verifier_failure_probability
                == standard.verifier_failure_probability
            )
        assert partition_chaos_scenario(VirtualClock()).bus_outages
        assert crash_chaos_scenario(VirtualClock()).cache_crashes


class TestCliParsing:
    def test_bare_faults_flag_means_standard(self):
        args = build_parser().parse_args(["bench", "a1", "--faults"])
        assert args.faults == "standard"

    def test_named_scenarios_parse(self):
        for name in ("standard", "partition", "crash"):
            args = build_parser().parse_args(
                ["bench", "table1", "--faults", name]
            )
            assert args.faults == name

    def test_no_flag_means_no_scenario(self):
        args = build_parser().parse_args(["bench", "a1"])
        assert args.faults is None

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "a1", "--faults", "bogus"])

    def test_a13_and_alias_are_registered(self):
        from repro.__main__ import _EXPERIMENT_MODULES

        assert _EXPERIMENT_MODULES["a13"] == "repro.bench.recovery"
        assert _EXPERIMENT_MODULES["recovery"] == "repro.bench.recovery"
