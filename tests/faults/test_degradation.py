"""Graceful degradation: stale serves, quarantine, bypass, recovery."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.errors import ContentUnavailableError, RepositoryOfflineError
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.retry import RetryPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

TTL_MS = 1_000.0


def _deployment(**cache_kwargs):
    """One TTL-verified document behind a cache; returns all the pieces."""
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        # All-web mix: the document carries a TTL verifier, so advancing
        # the clock past TTL_MS makes the next hit refetch.
        CorpusSpec(
            n_documents=1, ttl_ms=TTL_MS, seed=3,
            repository_mix=(("parcweb", 1.0),),
        ),
    )
    population = build_population(
        kernel, corpus, n_users=1, personalized_fraction=0.0, seed=3
    )
    cache_kwargs.setdefault("capacity_bytes", 1 << 20)
    cache = DocumentCache(kernel, **cache_kwargs)
    return kernel, corpus, population.references[0][0], cache


def _expire_and_break(kernel) -> None:
    """Advance past the TTL, then take the whole world offline."""
    kernel.ctx.clock.advance(TTL_MS * 2)
    kernel.ctx.faults = FaultPlan(
        kernel.ctx.clock, outages=(OutageWindow(0.0, float("inf")),)
    )


class TestServeStaleOnError:
    def test_stale_bytes_served_and_counted(self):
        kernel, _, reference, cache = _deployment(serve_stale_on_error=True)
        first = cache.read(reference)
        _expire_and_break(kernel)
        outcome = cache.read(reference)
        assert outcome.disposition == "stale-on-error"
        assert outcome.degraded and not outcome.hit
        assert outcome.content == first.content  # the stale bytes
        assert cache.stats.stale_served_on_error == 1
        assert cache.stats.degraded_serves == 1
        assert cache.stats.fetch_failures == 1

    def test_disabled_by_default_the_read_fails(self):
        kernel, _, reference, cache = _deployment()
        cache.read(reference)
        _expire_and_break(kernel)
        with pytest.raises(RepositoryOfflineError):
            cache.read(reference)
        assert cache.stats.stale_served_on_error == 0

    def test_staleness_bound_honored(self):
        kernel, _, reference, cache = _deployment(
            serve_stale_on_error=True,
            stale_serve_max_age_ms=TTL_MS,  # entry will be 2×TTL old
        )
        cache.read(reference)
        _expire_and_break(kernel)
        with pytest.raises(RepositoryOfflineError):
            cache.read(reference)
        assert cache.stats.stale_serve_rejected == 1
        assert cache.stats.stale_served_on_error == 0

    def test_bound_admits_young_enough_stale_bytes(self):
        kernel, _, reference, cache = _deployment(
            serve_stale_on_error=True,
            stale_serve_max_age_ms=TTL_MS * 10,
        )
        cache.read(reference)
        _expire_and_break(kernel)
        assert cache.read(reference).disposition == "stale-on-error"
        assert cache.stats.stale_serve_rejected == 0


# Quarantine is a breaker configuration: inspect and reset it through
# the degradation policy's breaker registry.
class TestVerifierQuarantine:
    def test_repeated_failures_quarantine_then_force_misses(self):
        kernel, _, reference, cache = _deployment(
            verifier_quarantine_threshold=2,
        )
        cache.read(reference)  # fill
        # Every verifier execution now raises.
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, verifier_failure_probability=1.0
        )
        cache.read(reference)  # failure 1 → conservative miss, refill
        assert cache.stats.quarantined_verifiers == 0
        cache.read(reference)  # failure 2 → quarantined
        assert cache.stats.quarantined_verifiers == 1
        assert cache.degradation_policy.breakers.open_keys()
        before = cache.stats.quarantine_forced_misses
        outcome = cache.read(reference)  # no verifier runs: forced miss
        assert not outcome.hit
        assert cache.stats.quarantine_forced_misses == before + 1

    def test_breaker_reset_restores_verification(self):
        kernel, _, reference, cache = _deployment(
            verifier_quarantine_threshold=1,
        )
        cache.read(reference)
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, verifier_failure_probability=1.0
        )
        cache.read(reference)
        breakers = cache.degradation_policy.breakers
        assert breakers.open_keys()
        # The verifier fault is repaired; lift the quarantine.
        kernel.ctx.faults = None
        assert breakers.reset_all() == 1
        assert not breakers.open_keys()
        cache.read(reference)  # refill under working verifiers
        assert cache.read(reference).hit  # verified hit again

    def test_success_resets_the_failure_count(self):
        kernel, _, reference, cache = _deployment(
            verifier_quarantine_threshold=2,
        )
        cache.read(reference)
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, verifier_failure_probability=1.0
        )
        cache.read(reference)  # failure 1 of 2
        kernel.ctx.faults = None
        assert cache.read(reference).hit  # success clears the count
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, verifier_failure_probability=1.0
        )
        cache.read(reference)  # failure 1 again — not a quarantine
        assert cache.stats.quarantined_verifiers == 0


class TestBypassBacking:
    def _stacked(self, bypass: bool):
        kernel, corpus, reference, backing = _deployment()
        front = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            backing=backing, bypass_backing_on_error=bypass,
            name="front",
        )
        # The second level is unreachable; the kernel itself is healthy.
        def unreachable(reference):
            raise ContentUnavailableError("backing level down")
        backing.read_for_fill = unreachable
        return kernel, reference, front

    def test_bypass_fetches_fresh_past_the_failed_level(self):
        kernel, reference, front = self._stacked(bypass=True)
        outcome = front.read(reference)
        assert outcome.disposition == "miss-degraded"
        assert outcome.degraded
        assert outcome.content == kernel.read(reference).content
        assert front.stats.backing_bypasses == 1
        assert front.stats.degraded_serves == 1

    def test_without_bypass_the_read_fails(self):
        _, reference, front = self._stacked(bypass=False)
        with pytest.raises(ContentUnavailableError):
            front.read(reference)
        assert front.stats.backing_bypasses == 0


class TestOutageRecovery:
    def test_transparency_restored_after_the_window(self):
        kernel, _, reference, cache = _deployment(
            serve_stale_on_error=True,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_ms=10.0),
        )
        cache.read(reference)
        kernel.ctx.clock.advance(TTL_MS * 2)
        outage_end = kernel.ctx.clock.now_ms + 5_000.0
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, outages=(OutageWindow(0.0, outage_end),)
        )
        # During the outage: bounded stale serves keep the reads answered.
        assert cache.read(reference).disposition == "stale-on-error"
        # After the window: fresh fill, then verified hits — and the
        # cache is transparent against the kernel again.
        kernel.ctx.clock.advance(outage_end + 1.0)
        refreshed = cache.read(reference)
        assert refreshed.disposition == "miss"
        assert not refreshed.degraded
        assert cache.read(reference).hit
        assert cache.read(reference).content == kernel.read(reference).content
