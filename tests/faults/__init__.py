"""Fault-injection tier: deterministic schedules, retry, degradation."""
