"""RetryPolicy: backoff schedule, virtual-clock charging, integration."""

from __future__ import annotations

import pytest

from repro.cache.manager import DocumentCache
from repro.errors import (
    ContentUnavailableError,
    RepositoryOfflineError,
    WorkloadError,
)
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.retry import RetryPolicy
from repro.sim.context import SimContext


class TestSchedule:
    def test_exponential_growth(self):
        policy = RetryPolicy(base_delay_ms=10.0, multiplier=2.0,
                             max_delay_ms=1_000.0)
        assert policy.delay_before_retry_ms(1) == 10.0
        assert policy.delay_before_retry_ms(2) == 20.0
        assert policy.delay_before_retry_ms(3) == 40.0

    def test_cap_applies(self):
        policy = RetryPolicy(base_delay_ms=10.0, multiplier=10.0,
                             max_delay_ms=50.0)
        assert policy.delay_before_retry_ms(1) == 10.0
        assert policy.delay_before_retry_ms(2) == 50.0
        assert policy.delay_before_retry_ms(9) == 50.0

    def test_total_backoff_sums_the_schedule(self):
        policy = RetryPolicy(base_delay_ms=10.0, multiplier=2.0,
                             max_delay_ms=1_000.0)
        assert policy.total_backoff_ms(3) == 10.0 + 20.0 + 40.0
        assert policy.total_backoff_ms(0) == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(WorkloadError):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(WorkloadError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(WorkloadError):
            RetryPolicy().delay_before_retry_ms(0)


class TestCall:
    def test_success_first_try_charges_nothing(self):
        ctx = SimContext()
        policy = RetryPolicy(max_attempts=3, base_delay_ms=10.0)
        assert policy.call(ctx, lambda: "ok") == "ok"
        assert ctx.clock.now_ms == 0.0

    def test_backoff_charged_to_virtual_clock_exactly(self):
        ctx = SimContext()
        policy = RetryPolicy(max_attempts=4, base_delay_ms=10.0,
                             multiplier=2.0, max_delay_ms=1_000.0)
        failures = 2
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise ContentUnavailableError("transient")
            return "recovered"

        retries = []
        result = policy.call(
            ctx, flaky,
            on_retry=lambda attempt, delay, error: retries.append(
                (attempt, delay, type(error).__name__)
            ),
        )
        assert result == "recovered"
        assert ctx.clock.now_ms == policy.total_backoff_ms(failures) == 30.0
        assert retries == [
            (1, 10.0, "ContentUnavailableError"),
            (2, 20.0, "ContentUnavailableError"),
        ]

    def test_exhaustion_reraises_and_charges_all_backoffs(self):
        ctx = SimContext()
        policy = RetryPolicy(max_attempts=3, base_delay_ms=10.0,
                             multiplier=2.0)

        def always_down():
            raise RepositoryOfflineError("down")

        with pytest.raises(RepositoryOfflineError):
            policy.call(ctx, always_down)
        # max_attempts tries, max_attempts - 1 backoff waits.
        assert ctx.clock.now_ms == policy.total_backoff_ms(2) == 30.0

    def test_non_retryable_error_propagates_immediately(self):
        ctx = SimContext()
        policy = RetryPolicy(max_attempts=5, base_delay_ms=10.0)

        def broken():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(ctx, broken)
        assert ctx.clock.now_ms == 0.0  # no backoff was charged


class TestCacheIntegration:
    def test_retry_rides_out_an_outage_window(self, kernel, memory_reference):
        # Window [0, 25): the first two attempts fail at t=0 and t=10;
        # the third, at t=30, lands after the window and succeeds.
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, outages=(OutageWindow(0.0, 25.0),)
        )
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_ms=10.0,
                                     multiplier=2.0),
        )
        outcome = cache.read(memory_reference)
        assert outcome.disposition == "miss"
        assert not outcome.degraded
        assert cache.stats.retries == 2
        assert cache.stats.retry_delay_ms == 30.0
        assert cache.stats.fetch_failures == 0
        assert len(kernel.ctx.faults.injection_trace()) == 2

    def test_exhausted_retries_fail_the_read(self, kernel, memory_reference):
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, outages=(OutageWindow(0.0, 1e9),)
        )
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_ms=5.0),
        )
        with pytest.raises(RepositoryOfflineError):
            cache.read(memory_reference)
        assert cache.stats.retries == 1
        assert cache.stats.fetch_failures == 1

    def test_writeback_flush_failure_keeps_the_dirty_buffer(
        self, kernel, memory_reference
    ):
        from repro.cache.manager import WriteMode

        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20,
            write_mode=WriteMode.WRITE_BACK,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_ms=5.0),
        )
        cache.write(memory_reference, b"buffered bytes")
        assert cache.dirty_count == 1
        kernel.ctx.faults = FaultPlan(
            kernel.ctx.clock, outages=(OutageWindow(0.0, 1e9),)
        )
        with pytest.raises(RepositoryOfflineError):
            cache.flush(memory_reference)
        assert cache.dirty_count == 1  # the write is not lost
        assert cache.stats.flush_failures == 1
        assert cache.stats.flushes == 0
        # Repair the world: the retried flush now drains the buffer.
        kernel.ctx.faults = None
        assert cache.flush(memory_reference) is True
        assert cache.dirty_count == 0
        assert cache.stats.flushes == 1
