"""The ``misbehave`` fault family: property misbehaviour end to end.

Covers the plan-level injection (seed determinism, mode validation,
zero-probability stream preservation), the named chaos scenario, and a
chaos-tier run of a traced workload under misbehaving properties — with
containment on, the run must complete with availability intact; with
containment off, the runner counts the failures instead of crashing.
"""

from __future__ import annotations

import os

from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultContainmentPolicy
from repro.cache.stats import CacheStats
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import misbehave_chaos_scenario
from repro.placeless.kernel import PlacelessKernel
from repro.sim.clock import VirtualClock
from repro.sim.context import SimContext
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.runner import TraceRunner
from repro.workload.trace import TraceSpec, generate_trace
from repro.workload.users import build_population

import pytest

from repro.errors import WorkloadError

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "77"))


class TestPropertyFaultPlan:
    def test_same_seed_same_injection_trace(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan(
                VirtualClock(), seed=CHAOS_SEED,
                property_failure_probability=0.3,
            )
            draws.append(
                [plan.check_property(f"stream:p{i}") for i in range(200)]
            )
        assert draws[0] == draws[1]
        assert any(mode is not None for mode in draws[0])

    def test_different_seeds_differ(self):
        traces = []
        for seed in (CHAOS_SEED, CHAOS_SEED + 1):
            plan = FaultPlan(
                VirtualClock(), seed=seed,
                property_failure_probability=0.3,
            )
            traces.append(
                [plan.check_property("stream:p") for i in range(200)]
            )
        assert traces[0] != traces[1]

    def test_zero_probability_consumes_no_rng(self):
        # A plan without property faults must keep every other injection
        # stream byte-identical to a plan that never heard of them.
        plan = FaultPlan(
            VirtualClock(), seed=CHAOS_SEED,
            property_failure_probability=0.0,
        )
        before = plan._rng_property.getstate()
        assert plan.check_property("stream:p") is None
        assert plan._rng_property.getstate() == before

    def test_modes_are_validated(self):
        with pytest.raises(WorkloadError):
            FaultPlan(
                VirtualClock(),
                property_failure_probability=0.1,
                property_failure_modes=("raise", "segfault"),
            )
        with pytest.raises(WorkloadError):
            FaultPlan(
                VirtualClock(),
                property_failure_probability=0.1,
                property_failure_modes=(),
            )

    def test_stats_count_each_mode(self):
        plan = FaultPlan(
            VirtualClock(), seed=CHAOS_SEED,
            property_failure_probability=1.0,
        )
        for _ in range(30):
            plan.check_property("stream:p")
        stats = plan.stats
        injected = (
            stats.properties_raised
            + stats.properties_runaway
            + stats.properties_corrupted
        )
        assert injected == 30
        assert stats.properties_raised > 0
        assert stats.properties_runaway > 0
        assert stats.properties_corrupted > 0

    def test_misbehave_scenario_keeps_standard_probabilities(self):
        plan = misbehave_chaos_scenario(VirtualClock(), seed=CHAOS_SEED)
        assert plan.notifier_loss_probability == 0.05
        assert plan.notifier_delay_probability == 0.10
        assert plan.verifier_failure_probability == 0.02
        assert plan.property_failure_probability == 0.10


def _misbehaving_trace(containment_policy):
    ctx = SimContext()
    ctx.faults = misbehave_chaos_scenario(ctx.clock, seed=CHAOS_SEED)
    kernel = PlacelessKernel(ctx)
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=8, ttl_ms=60_000.0, seed=CHAOS_SEED),
    )
    population = build_population(
        kernel, corpus, n_users=2, personalized_fraction=0.5,
        seed=CHAOS_SEED,
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=sum(d.size_bytes for d in corpus),
        containment_policy=containment_policy,
        name="misbehave-chaos",
    )
    runner = TraceRunner(
        kernel, corpus, population.references, caches=cache,
        writes_via_cache=False,
    )
    spec = TraceSpec(
        n_events=400, n_documents=8, n_users=2,
        p_write=0.08, p_out_of_band=0.04,
        p_property_change=0.04,
        mean_think_time_ms=120.0,
        seed=CHAOS_SEED,
    )
    report = runner.execute(generate_trace(spec))
    return cache, report


class TestMisbehaveChaosTier:
    def test_uncontained_run_completes_counting_failures(self):
        cache, report = _misbehaving_trace(None)
        assert report.reads > 0
        # Without containment the injected raises/corruptions surface
        # as failed accesses — counted, not crashing the trace.
        assert report.read_failures > 0
        assert cache.containment_stats is None

    def test_contained_run_keeps_availability_higher(self):
        _, bare = _misbehaving_trace(None)
        cache, contained = _misbehaving_trace(
            DefaultContainmentPolicy(
                failure_threshold=1,
                probation_delay_ms=2_000.0,
                max_cost_ms=5.0,
            )
        )
        assert contained.reads == bare.reads
        assert contained.read_failures < bare.read_failures
        stats = cache.containment_stats
        assert stats is not None and stats.total > 0

    def test_containment_leaves_cache_stats_shape_alone(self):
        cache, _ = _misbehaving_trace(
            DefaultContainmentPolicy(failure_threshold=1)
        )
        assert isinstance(cache.stats, CacheStats)
        assert not hasattr(cache.stats, "failures_contained")
