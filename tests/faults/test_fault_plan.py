"""FaultPlan: deterministic schedules, seam checks, the default hook."""

from __future__ import annotations

import pytest

from repro.errors import (
    ContentUnavailableError,
    RepositoryOfflineError,
    VerifierError,
    WorkloadError,
)
from repro.faults.plan import (
    FaultPlan,
    FaultRecord,
    OutageWindow,
    clear_default_fault_scenario,
    set_default_fault_scenario,
)
from repro.sim.clock import VirtualClock
from repro.sim.context import SimContext


class TestOutageWindow:
    def test_half_open_interval(self):
        window = OutageWindow(100.0, 200.0)
        assert not window.covers(99.9, "repo")
        assert window.covers(100.0, "repo")
        assert window.covers(199.9, "repo")
        assert not window.covers(200.0, "repo")

    def test_target_filter(self):
        window = OutageWindow(0.0, 100.0, target="filer")
        assert window.covers(50.0, "filer")
        assert not window.covers(50.0, "web")

    def test_none_target_matches_everything(self):
        window = OutageWindow(0.0, 100.0)
        assert window.covers(50.0, "anything")

    def test_backwards_window_rejected(self):
        with pytest.raises(WorkloadError):
            OutageWindow(100.0, 50.0)


class TestValidation:
    @pytest.mark.parametrize("field", [
        "fetch_failure_probability",
        "notifier_loss_probability",
        "notifier_delay_probability",
        "verifier_failure_probability",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_bounded(self, field, bad):
        with pytest.raises(WorkloadError):
            FaultPlan(VirtualClock(), **{field: bad})

    def test_negative_delay_rejected(self):
        with pytest.raises(WorkloadError):
            FaultPlan(VirtualClock(), notifier_delay_ms=-1.0)

    def test_negative_timeout_budget_rejected(self):
        with pytest.raises(WorkloadError):
            FaultPlan(VirtualClock(), verifier_timeout_budget_ms=-5.0)


class TestFetchSeam:
    def test_outage_window_raises_offline(self):
        clock = VirtualClock()
        plan = FaultPlan(clock, outages=(OutageWindow(0.0, 100.0),))
        with pytest.raises(RepositoryOfflineError):
            plan.check_fetch("filer")
        assert plan.stats.fetch_offline == 1

    def test_outside_window_passes(self):
        clock = VirtualClock()
        plan = FaultPlan(clock, outages=(OutageWindow(50.0, 100.0),))
        plan.check_fetch("filer")  # t=0: before the window
        clock.advance(150.0)
        plan.check_fetch("filer")  # t=150: after the window
        assert plan.stats.total == 0

    def test_probability_one_always_fails(self):
        plan = FaultPlan(VirtualClock(), fetch_failure_probability=1.0)
        for _ in range(5):
            with pytest.raises(ContentUnavailableError):
                plan.check_fetch("web")
        assert plan.stats.fetch_unavailable == 5

    def test_probability_zero_never_fails(self):
        plan = FaultPlan(VirtualClock(), fetch_failure_probability=0.0)
        for _ in range(100):
            plan.check_fetch("web")
        assert plan.stats.total == 0

    def test_store_rejected_inside_window(self):
        plan = FaultPlan(
            VirtualClock(), outages=(OutageWindow(0.0, 100.0, target="filer"),)
        )
        with pytest.raises(RepositoryOfflineError):
            plan.check_store("filer")
        plan.check_store("web")  # different repository: unaffected
        assert plan.stats.store_offline == 1


class TestBusSeam:
    def test_loss_probability_one_drops(self):
        plan = FaultPlan(VirtualClock(), notifier_loss_probability=1.0)
        action, delay = plan.notifier_disposition("cache-1")
        assert (action, delay) == ("drop", 0.0)
        assert plan.stats.notifications_lost == 1

    def test_delay_probability_one_delays(self):
        plan = FaultPlan(
            VirtualClock(),
            notifier_delay_probability=1.0,
            notifier_delay_ms=250.0,
        )
        action, delay = plan.notifier_disposition("cache-1")
        assert (action, delay) == ("delay", 250.0)
        assert plan.stats.notifications_delayed == 1

    def test_healthy_plan_delivers(self):
        plan = FaultPlan(VirtualClock())
        assert plan.notifier_disposition("cache-1") == ("deliver", 0.0)
        assert plan.stats.total == 0


class TestVerifierSeam:
    def test_timeout_budget_enforced(self):
        plan = FaultPlan(VirtualClock(), verifier_timeout_budget_ms=1.0)
        plan.check_verifier(0.5, label="cheap")
        with pytest.raises(VerifierError):
            plan.check_verifier(5.0, label="expensive")
        assert plan.stats.verifier_timeouts == 1

    def test_failure_probability(self):
        plan = FaultPlan(VirtualClock(), verifier_failure_probability=1.0)
        with pytest.raises(VerifierError):
            plan.check_verifier(0.1)
        assert plan.stats.verifier_failures == 1


class TestLinkSeam:
    def test_link_down_inside_window(self):
        clock = VirtualClock()
        plan = FaultPlan(
            clock,
            link_outages=(OutageWindow(0.0, 100.0, target="app->server"),),
        )
        assert plan.link_down("app->server")
        assert not plan.link_down("server->repo")
        clock.advance(100.0)
        assert not plan.link_down("app->server")
        assert plan.stats.link_outages == 1


class TestDeterminism:
    def _drive(self, plan: FaultPlan) -> None:
        """One fixed decision sequence across every seam."""
        for i in range(50):
            plan.clock.advance(10.0)
            try:
                plan.check_fetch("filer")
            except Exception:
                pass
            plan.notifier_disposition(f"cache-{i % 3}")
            try:
                plan.check_verifier(0.2, label="ttl")
            except Exception:
                pass

    def _plan(self, seed: int) -> FaultPlan:
        return FaultPlan(
            VirtualClock(),
            seed=seed,
            fetch_failure_probability=0.3,
            notifier_loss_probability=0.2,
            notifier_delay_probability=0.2,
            notifier_delay_ms=100.0,
            verifier_failure_probability=0.1,
        )

    def test_same_seed_identical_trace(self):
        first, second = self._plan(42), self._plan(42)
        self._drive(first)
        self._drive(second)
        assert first.injection_trace() == second.injection_trace()
        assert vars(first.stats) == vars(second.stats)
        assert first.injection_trace()  # the trace is non-trivial

    def test_different_seed_different_trace(self):
        first, second = self._plan(1), self._plan(2)
        self._drive(first)
        self._drive(second)
        assert first.injection_trace() != second.injection_trace()

    def test_streams_are_independent_per_seam(self):
        # Draining the fetch stream must not perturb the bus stream.
        noisy, quiet = self._plan(7), self._plan(7)
        for _ in range(100):
            try:
                noisy.check_fetch("filer")
            except Exception:
                pass
        noisy_bus = [noisy.notifier_disposition("c") for _ in range(20)]
        quiet_bus = [quiet.notifier_disposition("c") for _ in range(20)]
        assert noisy_bus == quiet_bus

    def test_trace_records_carry_clock_time(self):
        clock = VirtualClock()
        plan = FaultPlan(clock, outages=(OutageWindow(0.0, 1e9),))
        clock.advance(123.5)
        with pytest.raises(RepositoryOfflineError):
            plan.check_fetch("filer")
        assert plan.injection_trace() == (
            FaultRecord(
                at_ms=123.5, site="provider", action="offline-window",
                target="filer",
            ),
        )


class TestDefaultScenarioHook:
    def test_new_contexts_pick_up_the_default(self):
        try:
            set_default_fault_scenario(
                lambda clock: FaultPlan(clock, fetch_failure_probability=1.0)
            )
            ctx = SimContext()
            assert ctx.faults is not None
            assert ctx.faults.clock is ctx.clock
            assert ctx.faults.fetch_failure_probability == 1.0
        finally:
            clear_default_fault_scenario()
        assert SimContext().faults is None

    def test_explicit_plan_not_overridden(self):
        try:
            set_default_fault_scenario(lambda clock: FaultPlan(clock))
            clock = VirtualClock()
            mine = FaultPlan(clock, seed=99)
            ctx = SimContext(clock=clock, faults=mine)
            assert ctx.faults is mine
        finally:
            clear_default_fault_scenario()
